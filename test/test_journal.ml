(* Durable builds: the checkpoint journal, the kill-campaign harness,
   and the headline invariant — a checkpointed build killed at ANY
   point (torn final record included) and resumed finishes with a
   container byte-identical to an uninterrupted build, on both tiers. *)

module W = Wet_core.Wet
module Builder = Wet_core.Builder
module Checkpoint = Wet_core.Builder.Checkpoint
module Store = Wet_core.Store
module Journal = Wet_journal.Journal
module Faultsim = Wet_faultsim.Faultsim
module Interp = Wet_interp.Interp
module Spec = Wet_workloads.Spec

let programs =
  [
    (* recursive calls: pending-call LIFO crosses checkpoint boundaries *)
    ( "fib-array",
      {|
global arr[10];
fn fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main() {
  var i = 0;
  while (i < 10) { arr[i] = fib(i); i = i + 1; }
  var j = 0;
  while (j < 10) { print(arr[j]); j = j + 1; }
}
|},
      [||] );
    ( "input-driven",
      {|
global buf[16];
fn weigh(x, w) { return x * w + 1; }
fn main() {
  var i = 0;
  while (i < 16) {
    buf[i] = weigh(input(), i % 4);
    i = i + 1;
  }
  var j = 0;
  while (j < 16) { print(buf[j]); j = j + 1; }
}
|},
      Array.init 16 (fun i -> (i * 13) mod 31) );
  ]

let workloads =
  List.map
    (fun (name, src, input) ->
      (name, Wet_minic.Frontend.compile_exn src, input))
    programs

let with_tmp_dir f =
  let dir = Filename.temp_file "wet_journal" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let disarm_kills () =
  Journal.kill_after_records := None;
  Journal.kill_after_bytes := None

let file_bytes path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let saved_bytes wet =
  let path = Filename.temp_file "wet_journal" ".wet" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.save wet path;
      file_bytes path)

(* ---------------- journal framing ---------------- *)

let test_round_trip () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "a.j" in
  let w = Journal.create path in
  Journal.append w ~tag:0 "header payload";
  Journal.append w ~tag:1 "";
  Journal.append w ~tag:255 (String.make 10_000 'x');
  Journal.close w;
  match Journal.read path with
  | Error m -> Alcotest.fail m
  | Ok scan ->
    Alcotest.(check bool) "not torn" false scan.Journal.torn;
    Alcotest.(check int) "record count" 3 (List.length scan.Journal.records);
    Alcotest.(check (list int)) "tags" [ 0; 1; 255 ]
      (List.map (fun r -> r.Journal.tag) scan.Journal.records);
    Alcotest.(check string) "payload 0" "header payload"
      (List.hd scan.Journal.records).Journal.payload;
    Alcotest.(check int) "intact covers file" (String.length (file_bytes path))
      scan.Journal.intact_bytes

let test_torn_tail_and_reopen () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "torn.j" in
  let w = Journal.create path in
  Journal.append w ~tag:0 "keep me";
  Journal.append w ~tag:1 "about to be torn";
  Journal.close w;
  let data = file_bytes path in
  (* rip 5 bytes off the final record: partial payload, CRC can't match *)
  let oc = open_out_bin path in
  output_string oc (String.sub data 0 (String.length data - 5));
  close_out oc;
  let scan =
    match Journal.read path with Ok s -> s | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "torn detected" true scan.Journal.torn;
  Alcotest.(check int) "only the intact prefix" 1
    (List.length scan.Journal.records);
  (* reopen discards the torn tail; appends land clean *)
  let w = Journal.reopen path ~at:scan.Journal.intact_bytes in
  Journal.append w ~tag:2 "after recovery";
  Journal.close w;
  (match Journal.read path with
   | Ok s ->
     Alcotest.(check bool) "clean after reopen" false s.Journal.torn;
     Alcotest.(check (list int)) "records" [ 0; 2 ]
       (List.map (fun r -> r.Journal.tag) s.Journal.records)
   | Error m -> Alcotest.fail m);
  (* corrupt a payload byte of the (now) last record: CRC must flag it *)
  let data = file_bytes path in
  let b = Bytes.of_string data in
  let last = Bytes.length b - 3 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  match Journal.read path with
  | Ok s ->
    Alcotest.(check bool) "crc mismatch is torn" true s.Journal.torn;
    Alcotest.(check int) "bad record dropped" 1 (List.length s.Journal.records)
  | Error m -> Alcotest.fail m

let test_read_errors () =
  (match Journal.read "/nonexistent/wet.j" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing file must be Error");
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "alien" in
  let oc = open_out_bin path in
  output_string oc "definitely not a journal";
  close_out oc;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  match Journal.read path with
  | Error m -> Alcotest.(check bool) "mentions magic" true (contains m "magic")
  | Ok _ -> Alcotest.fail "bad magic must be Error"

(* ---------------- kill hooks ---------------- *)

let test_kill_hooks () =
  with_tmp_dir @@ fun dir ->
  Fun.protect ~finally:disarm_kills @@ fun () ->
  let path = Filename.concat dir "k.j" in
  (* record kill: n-th append completes durably, then the process dies *)
  let w = Journal.create path in
  Journal.kill_after_records := Some 2;
  Journal.append w ~tag:0 "one";
  (try
     Journal.append w ~tag:0 "two";
     Alcotest.fail "append 2 should have killed"
   with Journal.Kill_injected -> ());
  Journal.close w;
  (match Journal.read path with
   | Ok s ->
     Alcotest.(check int) "both records durable" 2
       (List.length s.Journal.records);
     Alcotest.(check bool) "not torn" false s.Journal.torn
   | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "hook disarmed" true (!Journal.kill_after_records = None);
  (* Some 0 dies before writing anything *)
  let w = Journal.reopen path ~at:(String.length (file_bytes path)) in
  Journal.kill_after_records := Some 0;
  (try
     Journal.append w ~tag:0 "never lands";
     Alcotest.fail "Some 0 should kill pre-write"
   with Journal.Kill_injected -> ());
  Journal.close w;
  (match Journal.read path with
   | Ok s -> Alcotest.(check int) "still 2" 2 (List.length s.Journal.records)
   | Error m -> Alcotest.fail m);
  (* byte kill: the crossing write leaves a genuinely torn, durable tail *)
  let path2 = Filename.concat dir "kb.j" in
  let w = Journal.create path2 in
  Journal.append w ~tag:0 "intact first record";
  let before = String.length (file_bytes path2) in
  Journal.kill_after_bytes := Some 4;
  (try
     Journal.append w ~tag:1 "this one tears";
     Alcotest.fail "byte kill should fire"
   with Journal.Kill_injected -> ());
  Journal.close w;
  Alcotest.(check int) "exactly 4 torn bytes on disk" (before + 4)
    (String.length (file_bytes path2));
  match Journal.read path2 with
  | Ok s ->
    Alcotest.(check bool) "torn" true s.Journal.torn;
    Alcotest.(check int) "prefix intact" 1 (List.length s.Journal.records);
    Alcotest.(check int) "intact_bytes at tear" before s.Journal.intact_bytes
  | Error m -> Alcotest.fail m

(* ---------------- kill specs ---------------- *)

let test_kill_specs () =
  List.iter
    (fun (spec, kill) ->
      Alcotest.(check string) ("to_spec " ^ spec) spec
        (Faultsim.kill_to_spec kill);
      match Faultsim.kill_of_spec spec with
      | Ok k -> Alcotest.(check bool) ("of_spec " ^ spec) true (k = kill)
      | Error m -> Alcotest.fail m)
    [
      ("kill:shard:0", Faultsim.Kill_at_shard 0);
      ("kill:shard:7", Faultsim.Kill_at_shard 7);
      ("kill:byte:12345", Faultsim.Kill_at_byte 12345);
    ];
  List.iter
    (fun bad ->
      match Faultsim.kill_of_spec bad with
      | Ok _ -> Alcotest.fail (bad ^ " should not parse")
      | Error _ -> ())
    [ "kill:shard:-1"; "kill:shard:x"; "kill:7"; "shard:7"; "kill:byte" ];
  (* campaigns are reproducible from the seed *)
  let c1 = Faultsim.kill_campaign ~seed:42 ~count:16 ~shards:9 ~bytes:4096 in
  let c2 = Faultsim.kill_campaign ~seed:42 ~count:16 ~shards:9 ~bytes:4096 in
  Alcotest.(check bool) "campaign reproducible" true (c1 = c2);
  Alcotest.(check int) "campaign count" 16 (List.length c1)

let prop_kill_spec_round_trip =
  QCheck.Test.make ~name:"kill specs round-trip" ~count:200
    QCheck.(pair bool small_nat)
    (fun (shard, n) ->
      let k =
        if shard then Faultsim.Kill_at_shard n else Faultsim.Kill_at_byte n
      in
      Faultsim.kill_of_spec (Faultsim.kill_to_spec k) = Ok k)

(* ---------------- fast-forward ---------------- *)

let test_fast_forward () =
  let log = ref [] in
  let push x = log := x :: !log in
  let base =
    {
      Interp.es_block = (fun cd -> push (`B cd));
      es_dep = (fun p -> push (`D p));
      es_stmt = (fun v -> push (`S v));
      es_path = (fun k -> push (`P k));
      es_call = (fun () -> push `C);
      es_ret = (fun v p -> push (`R (v, p)));
      es_live = (fun _ -> push `L);
    }
  in
  let caught = ref 0 in
  let wm =
    { Interp.wm_stmts = 2; wm_blocks = 1; wm_deps = 0; wm_paths = 1;
      wm_calls = 1; wm_rets = 0 }
  in
  let ff = Interp.fast_forward ~on_caught_up:(fun () -> incr caught) wm base in
  ff.Interp.es_live (fun _ -> ());  (* always forwarded *)
  ff.Interp.es_stmt 10;             (* suppressed (1/2) *)
  ff.Interp.es_block 5;             (* suppressed (1/1) *)
  ff.Interp.es_call ();             (* suppressed (1/1) *)
  ff.Interp.es_stmt 11;             (* suppressed (2/2) *)
  Alcotest.(check int) "not yet caught up" 0 !caught;
  ff.Interp.es_path 99;             (* suppressed (1/1) -> caught up *)
  Alcotest.(check int) "caught up fires once" 1 !caught;
  ff.Interp.es_stmt 12;             (* forwarded *)
  ff.Interp.es_ret 7 3;             (* forwarded: ret for a pre-wm call *)
  ff.Interp.es_dep 4;               (* forwarded (wm_deps = 0) *)
  ff.Interp.es_path 100;
  Alcotest.(check int) "still once" 1 !caught;
  Alcotest.(check bool) "post-watermark events forwarded in order" true
    (List.rev !log = [ `L; `S 12; `R (7, 3); `D 4; `P 100 ]);
  (* a zero watermark signals immediately and suppresses nothing *)
  let caught0 = ref 0 in
  let _ =
    Interp.fast_forward
      ~on_caught_up:(fun () -> incr caught0)
      Interp.zero_watermark base
  in
  Alcotest.(check int) "zero watermark is immediate" 1 !caught0

(* ---------------- crash recovery ---------------- *)

let shard_events = 512

(* An uninterrupted checkpointed build: the reference container bytes
   and the journal's shard count. *)
let clean_build dir name prog input =
  let journal = Filename.concat dir (name ^ ".clean.j") in
  let wet =
    Checkpoint.build ~shard_events ~journal ~program:prog ~input ()
  in
  let shards =
    match Journal.read journal with
    | Ok scan -> List.length scan.Journal.records - 1 (* minus header *)
    | Error m -> Alcotest.fail m
  in
  (saved_bytes wet, saved_bytes (Builder.pack wet), shards)

let kill_and_resume dir name prog input ~arm =
  Fun.protect ~finally:disarm_kills @@ fun () ->
  let journal = Filename.concat dir (name ^ ".kill.j") in
  (match
     Checkpoint.build ~shard_events
       ~on_header_written:arm ~journal ~program:prog ~input ()
   with
  | _wet -> Alcotest.fail (name ^ ": kill did not fire")
  | exception Journal.Kill_injected -> ());
  let r = Checkpoint.resume ~journal () in
  (saved_bytes r.Checkpoint.r_wet,
   saved_bytes (Builder.pack r.Checkpoint.r_wet),
   r)

(* The tentpole invariant: kill at EVERY shard boundary, resume, and
   the container is byte-identical on both tiers — for each workload. *)
let test_kill_at_every_shard_boundary () =
  with_tmp_dir @@ fun dir ->
  List.iter
    (fun (name, prog, input) ->
      let t1, t2, shards = clean_build dir name prog input in
      Alcotest.(check bool) (name ^ ": multiple shards") true (shards >= 2);
      for k = 0 to shards do
        let rt1, rt2, r =
          kill_and_resume dir name prog input ~arm:(fun () ->
              Journal.kill_after_records := Some k)
        in
        let label = Printf.sprintf "%s kill:shard:%d" name k in
        Alcotest.(check bool) (label ^ " tier1 identical") true (rt1 = t1);
        Alcotest.(check bool) (label ^ " tier2 identical") true (rt2 = t2);
        Alcotest.(check int) (label ^ " replayed") k
          r.Checkpoint.r_replayed_shards;
        Alcotest.(check bool) (label ^ " no torn tail") false
          r.Checkpoint.r_torn_tail
      done)
    workloads

(* Torn final record: a byte-budget kill lands mid-record; recovery must
   detect the tear, truncate it, and restore the previous checkpoint —
   never trust the torn bytes. *)
let test_torn_final_record_replayed () =
  with_tmp_dir @@ fun dir ->
  let name, prog, input = List.hd workloads in
  let t1, t2, _ = clean_build dir name prog input in
  (* a full clean journal tells us where records land; the kill budget
     is relative to the checkpoint stream (armed after the header), so
     subtract the magic and the header record *)
  let probe = Filename.concat dir (name ^ ".clean.j") in
  let total = String.length (file_bytes probe) in
  let header_end =
    match Journal.read probe with
    | Ok { Journal.records = hd :: _; _ } ->
      8 + 9 + String.length hd.Journal.payload
    | _ -> Alcotest.fail "clean journal lost its header"
  in
  (* kill 10 bytes shy of the journal's full extent: inside the last
     record's frame for any realistically-sized checkpoint *)
  let rt1, rt2, r =
    kill_and_resume dir name prog input ~arm:(fun () ->
        Journal.kill_after_bytes := Some (total - header_end - 10))
  in
  Alcotest.(check bool) "torn tail detected" true r.Checkpoint.r_torn_tail;
  Alcotest.(check bool) "tier1 identical after torn resume" true (rt1 = t1);
  Alcotest.(check bool) "tier2 identical after torn resume" true (rt2 = t2)

let prop_kill_at_random_byte =
  QCheck.Test.make ~name:"resume after a random byte-offset kill" ~count:8
    QCheck.(small_nat)
    (fun seed ->
      with_tmp_dir @@ fun dir ->
      let name, prog, input = List.nth workloads (seed mod 2) in
      let t1, _, _ = clean_build dir name prog input in
      let probe = Filename.concat dir (name ^ ".clean.j") in
      let total = String.length (file_bytes probe) in
      let header_end =
        match Journal.read probe with
        | Ok { Journal.records = hd :: _; _ } ->
          8 + 9 + String.length hd.Journal.payload
        | _ -> Alcotest.fail "clean journal lost its header"
      in
      (* anywhere in the checkpoint stream: [1, stream extent - 1] so
         the kill always fires before the build completes *)
      let stream = total - header_end in
      let rng = Wet_util.Prng.create seed in
      let kill =
        match Faultsim.random_kill rng ~shards:1 ~bytes:(stream - 1) with
        | Faultsim.Kill_at_byte b -> 1 + b
        | Faultsim.Kill_at_shard _ -> 1 + Wet_util.Prng.int rng (stream - 1)
      in
      let rt1, _, _ =
        kill_and_resume dir name prog input ~arm:(fun () ->
            Journal.kill_after_bytes := Some kill)
      in
      rt1 = t1)

(* A build killed before its first checkpoint leaves a header-only
   journal; resume is a fresh (but still correct) rebuild. A journal
   with no intact header cannot be resumed. *)
let test_header_only_and_headerless () =
  with_tmp_dir @@ fun dir ->
  let name, prog, input = List.hd workloads in
  let t1, _, _ = clean_build dir name prog input in
  let rt1, _, r =
    kill_and_resume dir name prog input ~arm:(fun () ->
        Journal.kill_after_records := Some 0)
  in
  Alcotest.(check int) "nothing replayed" 0 r.Checkpoint.r_replayed_shards;
  Alcotest.(check bool) "fresh rebuild identical" true (rt1 = t1);
  let empty = Filename.concat dir "headerless.j" in
  Journal.close (Journal.create empty);
  match Checkpoint.resume ~journal:empty () with
  | _ -> Alcotest.fail "headerless resume must fail"
  | exception Wet_error.Error { Wet_error.stage = Wet_error.Journal; _ } -> ()

(* describe: header + latest checkpoint summary without recovery *)
let test_describe () =
  with_tmp_dir @@ fun dir ->
  let name, prog, input = List.hd workloads in
  let _ = clean_build dir name prog input in
  let journal = Filename.concat dir (name ^ ".clean.j") in
  match Checkpoint.describe journal with
  | Error m -> Alcotest.fail m
  | Ok (header, ckpt, torn) ->
    Alcotest.(check bool) "not torn" false torn;
    Alcotest.(check int) "shard_events recorded" shard_events
      header.Checkpoint.h_shard_events;
    (match ckpt with
     | None -> Alcotest.fail "expected a checkpoint"
     | Some c ->
       Alcotest.(check bool) "shards counted" true
         (c.Checkpoint.c_shards >= 2);
       Alcotest.(check bool) "watermark advanced" true
         (c.Checkpoint.c_watermark.Interp.wm_stmts > 0))

(* ---------------- orphaned save temps ---------------- *)

let test_orphan_sweep () =
  with_tmp_dir @@ fun dir ->
  let target = Filename.concat dir "out.wet" in
  let mk name =
    let oc = open_out_bin (Filename.concat dir name) in
    output_string oc "junk";
    close_out oc
  in
  mk ".out.wet.a1b2.tmp";
  mk ".out.wet.ZZ.tmp";
  mk ".other.wet.a1b2.tmp";  (* different target: not ours *)
  mk "out.wet.tmp";          (* missing "." frame: not a save temp *)
  mk ".out.wet.tmp";         (* missing random infix: not a save temp *)
  let orphans = Store.orphan_temps target in
  Alcotest.(check (list string)) "exactly the stranded temps"
    [ Filename.concat dir ".out.wet.ZZ.tmp";
      Filename.concat dir ".out.wet.a1b2.tmp" ]
    orphans;
  let removed = Store.remove_orphans target in
  Alcotest.(check int) "both removed" 2 (List.length removed);
  Alcotest.(check (list string)) "sweep now clean" []
    (Store.orphan_temps target);
  Alcotest.(check bool) "unrelated file untouched" true
    (Sys.file_exists (Filename.concat dir ".other.wet.a1b2.tmp"))

(* A real crashed save strands a temp the sweep finds. *)
let test_orphan_from_crashed_save () =
  with_tmp_dir @@ fun dir ->
  let _, prog, input = List.hd workloads in
  let wet = Builder.run_streaming ~program:prog ~input () in
  let target = Filename.concat dir "crash.wet" in
  Store.crash_after := Some 64;
  (try
     Store.save wet target;
     Alcotest.fail "crash hook did not fire"
   with Store.Crash_injected -> ());
  Alcotest.(check bool) "destination never appeared" false
    (Sys.file_exists target);
  Alcotest.(check int) "one orphan stranded" 1
    (List.length (Store.orphan_temps target));
  ignore (Store.remove_orphans target);
  Alcotest.(check (list string)) "gc leaves nothing" []
    (Store.orphan_temps target)

let () =
  Alcotest.run "journal"
    [
      ( "framing",
        [
          Alcotest.test_case "append/read round-trip" `Quick test_round_trip;
          Alcotest.test_case "torn tail detected; reopen truncates" `Quick
            test_torn_tail_and_reopen;
          Alcotest.test_case "unreadable and alien files" `Quick
            test_read_errors;
        ] );
      ( "kills",
        [
          Alcotest.test_case "record and byte kill hooks" `Quick
            test_kill_hooks;
          Alcotest.test_case "kill specs parse and print" `Quick
            test_kill_specs;
          QCheck_alcotest.to_alcotest prop_kill_spec_round_trip;
        ] );
      ( "fast-forward",
        [ Alcotest.test_case "suppression and catch-up" `Quick
            test_fast_forward ] );
      ( "recovery",
        [
          Alcotest.test_case "kill at every shard boundary, both tiers"
            `Quick test_kill_at_every_shard_boundary;
          Alcotest.test_case "torn final record replayed, not trusted"
            `Quick test_torn_final_record_replayed;
          QCheck_alcotest.to_alcotest prop_kill_at_random_byte;
          Alcotest.test_case "header-only and headerless journals" `Quick
            test_header_only_and_headerless;
          Alcotest.test_case "describe reports without recovering" `Quick
            test_describe;
        ] );
      ( "orphans",
        [
          Alcotest.test_case "sweep matches exactly and gc removes" `Quick
            test_orphan_sweep;
          Alcotest.test_case "crashed save strands a sweepable temp" `Quick
            test_orphan_from_crashed_save;
        ] );
    ]
