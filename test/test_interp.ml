(* Exercises the deprecated module-level cursor API alongside the new
   Session surface; the alias stays until the legacy API is removed. *)
[@@@alert "-deprecated"]

module Frontend = Wet_minic.Frontend
module Interp = Wet_interp.Interp
module T = Wet_interp.Trace
module Instr = Wet_ir.Instr
module Program = Wet_ir.Program

let compile src = Frontend.compile_exn src

let run ?(input = [||]) src = Interp.run (compile src) ~input

let expect_runtime_error name ?input src fragment =
  match run ?input src with
  | _ -> Alcotest.failf "%s: expected a runtime error" name
  | exception Wet_error.Error { Wet_error.stage = Wet_error.Interp; msg = m } ->
    let contains =
      let nh = String.length m and nn = String.length fragment in
      let rec go i = i + nn <= nh && (String.sub m i nn = fragment || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) (name ^ ": " ^ m) true contains

let test_runtime_errors () =
  expect_runtime_error "div by zero" "fn main() { var z = 0; print(1 / z); }"
    "division by zero";
  expect_runtime_error "rem by zero" "fn main() { var z = 0; print(1 % z); }"
    "remainder by zero";
  expect_runtime_error "oob store" "global a[4]; fn main() { a[10] = 1; }"
    "out of bounds";
  expect_runtime_error "oob load" "global a[4]; fn main() { print(a[-1]); }"
    "out of bounds";
  expect_runtime_error "input exhausted" "fn main() { print(input()); }"
    "input stream exhausted";
  (* statement budget *)
  (match
     Interp.run
       (compile "fn main() { var x = 0; while (1) { x = x + 1; } }")
       ~input:[||] ~max_stmts:10_000
   with
   | _ -> Alcotest.fail "expected budget error"
   | exception Wet_error.Error { Wet_error.stage = Wet_error.Interp; msg = m } ->
     Alcotest.(check bool) "budget" true
       (String.length m > 0))

let sample =
  {|
global acc[8];
fn triple(x) { return x * 3; }
fn main() {
  var i = 0;
  while (i < 8) {
    acc[i] = triple(i) + input();
    i = i + 1;
  }
  var s = 0;
  for (var j = 0; j < 8; j = j + 1) { s = s + acc[j]; }
  print(s);
}
|}

let sample_input = Array.init 8 (fun i -> 100 + i)

let test_trace_alignment () =
  let res = run ~input:sample_input sample in
  let tr = res.Interp.trace in
  let prog = T.program tr in
  Alcotest.(check int) "values per statement" tr.T.nstmts
    (Array.length tr.T.values);
  Alcotest.(check int) "cd per block" (Array.length tr.T.blocks)
    (Array.length tr.T.cd_producer);
  (* the dependence stream has exactly sum(dyn_use_count) entries *)
  let expected_deps = ref 0 in
  let expected_mem = ref 0 in
  Array.iter
    (fun e ->
      let f, b = T.decode_block e in
      Array.iter
        (fun ins ->
          expected_deps := !expected_deps + Instr.dyn_use_count ins;
          if Instr.is_memory ins then incr expected_mem)
        prog.Program.funcs.(f).Wet_ir.Func.blocks.(b).Wet_ir.Func.instrs)
    tr.T.blocks;
  Alcotest.(check int) "deps entries" !expected_deps (Array.length tr.T.deps);
  Alcotest.(check int) "mem ops" !expected_mem (Array.length tr.T.mem_ops);
  (* statement count equals total statements of executed blocks *)
  let stmts = ref 0 in
  Array.iter
    (fun e ->
      let f, b = T.decode_block e in
      stmts :=
        !stmts
        + Array.length prog.Program.funcs.(f).Wet_ir.Func.blocks.(b).Wet_ir.Func.instrs)
    tr.T.blocks;
  Alcotest.(check int) "stmt count" !stmts tr.T.nstmts

let test_outputs_agree () =
  let res = run ~input:sample_input sample in
  let fast = Interp.outputs_only (compile sample) ~input:sample_input in
  Alcotest.(check (array int)) "recorded = unrecorded" fast res.Interp.outputs;
  (* ground truth: sum of 3i + (100+i) for i in 0..7 *)
  let expect = Array.to_list (Array.init 8 (fun i -> (3 * i) + 100 + i)) in
  Alcotest.(check (list int)) "value" [ List.fold_left ( + ) 0 expect ]
    (Array.to_list res.Interp.outputs)

let test_producer_positions () =
  let res = run ~input:sample_input sample in
  let tr = res.Interp.trace in
  (* every recorded producer position is a statement position strictly
     before... (ret links point forward) ...within range, and the value
     at a store's position is the stored value (spot check: positions of
     stores are recoverable through mem_ops ordering). *)
  Array.iter
    (fun d ->
      Alcotest.(check bool) "producer in range" true
        (d = -1 || (d >= 0 && d < tr.T.nstmts)))
    tr.T.deps

let test_path_expansion () =
  let res = run ~input:sample_input sample in
  let tr = res.Interp.trace in
  let module PA = Wet_cfg.Program_analysis in
  let expanded = ref [] in
  Array.iter
    (fun e ->
      let f, pid = T.decode_path e in
      let bl = (PA.fn tr.T.analysis f).PA.bl in
      List.iter
        (fun b -> expanded := T.encode_block f b :: !expanded)
        (Wet_cfg.Ball_larus.blocks_of_path bl pid))
    tr.T.paths;
  Alcotest.(check bool) "paths expand to blocks" true
    (Array.of_list (List.rev !expanded) = tr.T.blocks)

let test_determinism () =
  let r1 = run ~input:sample_input sample in
  let r2 = run ~input:sample_input sample in
  Alcotest.(check bool) "same trace" true
    (r1.Interp.trace.T.paths = r2.Interp.trace.T.paths
    && r1.Interp.trace.T.values = r2.Interp.trace.T.values
    && r1.Interp.trace.T.deps = r2.Interp.trace.T.deps)

let test_recursion_depth () =
  (* deep but bounded recursion works *)
  let src =
    {|fn down(n) { if (n == 0) { return 0; } return down(n - 1); }
      fn main() { print(down(20000)); }|}
  in
  Alcotest.(check (list int)) "deep recursion" [ 0 ]
    (Array.to_list (run src).Interp.outputs)


let test_recursive_main_halts () =
  (* main is an ordinary function; calling it recursively and halting
     deep inside must stop the whole program, keeping prior outputs *)
  let src =
    {|
global depth;
fn main() {
  print(depth);
  depth = depth + 1;
  if (depth < 3) { main(); }
  print(99);
}
|}
  in
  (* the implicit Halt at the end of main fires at the innermost return
     point, so the trailing print runs only once... in fact Halt ends
     everything: only the innermost 99 is printed *)
  Alcotest.(check (list int)) "halt unwinds" [ 0; 1; 2; 99 ]
    (Array.to_list (run src).Interp.outputs)

let test_no_memory_program () =
  let res = run "fn main() { var x = 1 + 2; print(x); }" in
  Alcotest.(check int) "no mem ops" 0
    (Array.length res.Interp.trace.T.mem_ops);
  Alcotest.(check bool) "still has paths" true
    (Array.length res.Interp.trace.T.paths > 0)

let test_input_across_calls () =
  let src =
    {|
fn take_two() { return input() + input(); }
fn main() { print(take_two()); print(input()); }
|}
  in
  Alcotest.(check (list int)) "consumption order" [ 30; 3 ]
    (Array.to_list (run ~input:[| 10; 20; 3 |] src).Interp.outputs)

let test_wet_on_trivial_programs () =
  (* single-path programs must build valid WETs *)
  List.iter
    (fun src ->
      let res = run src in
      let wet = Wet_core.Builder.build res.Interp.trace in
      let wet2 = Wet_core.Builder.pack wet in
      Wet_core.Query.park wet2 Wet_core.Query.Forward;
      let n =
        Wet_core.Query.control_flow wet2 Wet_core.Query.Forward
          ~f:(fun _ _ -> ())
      in
      Alcotest.(check int) "block count"
        (Array.length res.Interp.trace.T.blocks)
        n)
    [
      "fn main() { }";
      "fn main() { print(42); }";
      "fn f() {} fn main() { f(); }";
    ]

let () =
  Alcotest.run "interp"
    [
      ( "errors",
        [ Alcotest.test_case "runtime errors" `Quick test_runtime_errors ] );
      ( "trace",
        [
          Alcotest.test_case "stream alignment" `Quick test_trace_alignment;
          Alcotest.test_case "producer positions" `Quick test_producer_positions;
          Alcotest.test_case "path expansion" `Quick test_path_expansion;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "execution",
        [
          Alcotest.test_case "outputs agree" `Quick test_outputs_agree;
          Alcotest.test_case "recursion depth" `Quick test_recursion_depth;
          Alcotest.test_case "recursive main halts" `Quick test_recursive_main_halts;
          Alcotest.test_case "no memory ops" `Quick test_no_memory_program;
          Alcotest.test_case "input across calls" `Quick test_input_across_calls;
          Alcotest.test_case "trivial programs" `Quick test_wet_on_trivial_programs;
        ] );
    ]
