(* Exercises the deprecated module-level cursor API alongside the new
   Session surface; the alias stays until the legacy API is removed. *)
[@@@alert "-deprecated"]

(* Semantics of the wet_watch tracer driver: filter-spec parsing and
   printing round-trips, compiled predicates against an independent
   reference evaluator, flight-recorder wraparound, watchpoint
   timestamps agreeing with [Query.locate_time], and the query-explain
   invariant that a full forward control-flow sweep pays exactly one
   forward timestamp step per path execution. *)

module E = Wet_watch.Event
module F = Wet_watch.Filter
module FSpec = Wet_watch.Spec
module Ring = Wet_watch.Ring
module Watch = Wet_watch.Watch
module Ex = Wet_watch.Explain
module Wl = Wet_workloads.Spec
module Interp = Wet_interp.Interp
module Builder = Wet_core.Builder
module W = Wet_core.Wet
module Query = Wet_core.Query
module Slice = Wet_core.Slice

(* One real program (with several functions) shared by the tests that
   need resolvable [fn=] atoms. *)
let prog = Wl.compile (Wl.find "parser")

let fn_names =
  Array.to_list
    (Array.map (fun (f : Wet_ir.Func.t) -> f.Wet_ir.Func.name)
       prog.Wet_ir.Program.funcs)

let filter_t = Alcotest.testable (Fmt.of_to_string FSpec.print) F.equal

let parse_exn s =
  match FSpec.parse s with
  | Ok f -> f
  | Error m -> Alcotest.fail (Printf.sprintf "parse %S: %s" s m)

(* ------------------------------------------------------------------ *)
(* Reference evaluator: independent of the compiled closure tree.      *)
(* ------------------------------------------------------------------ *)

let rec eval (f : F.t) (e : E.t) =
  match f with
  | F.True -> true
  | F.Kind k -> e.E.e_kind = k
  | F.Fn name ->
    prog.Wet_ir.Program.funcs.(e.E.e_func).Wet_ir.Func.name = name
  | F.Block b -> e.E.e_block = b
  | F.Value (lo, hi) ->
    E.has_value e.E.e_kind && lo <= e.E.e_value && e.E.e_value <= hi
  | F.Addr (lo, hi) ->
    E.has_addr e.E.e_kind && lo <= e.E.e_addr && e.E.e_addr <= hi
  | F.Not g -> not (eval g e)
  | F.All gs -> List.for_all (fun g -> eval g e) gs
  | F.Any gs -> List.exists (fun g -> eval g e) gs

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* Combinator lists always have >= 2 elements and ranges are ordered,
   so printing loses nothing and [parse (print f) = Ok f] holds
   exactly (empty/singleton [All]/[Any] print as their meaning and
   round-trip only up to that normalisation). *)
let gen_filter =
  let open QCheck.Gen in
  let range lo hi =
    map2 (fun a b -> (min a b, max a b)) (int_range lo hi) (int_range lo hi)
  in
  let leaf =
    frequency
      [
        (1, return F.True);
        (4, map (fun i -> F.Kind (E.kind_of_index i)) (int_range 0 (E.num_kinds - 1)));
        (2, map (fun n -> F.Fn n) (oneofl fn_names));
        (2, map (fun b -> F.Block b) (int_range 0 6));
        (3, map (fun (lo, hi) -> F.Value (lo, hi)) (range (-4) 24));
        (3, map (fun (lo, hi) -> F.Addr (lo, hi)) (range (-1) 40));
      ]
  in
  fix
    (fun self depth ->
      if depth <= 0 then leaf
      else
        frequency
          [
            (3, leaf);
            (2, map (fun f -> F.Not f) (self (depth - 1)));
            ( 2,
              map (fun fs -> F.All fs)
                (list_size (int_range 2 3) (self (depth - 1))) );
            ( 2,
              map (fun fs -> F.Any fs)
                (list_size (int_range 2 3) (self (depth - 1))) );
          ])
    3

let arb_filter = QCheck.make ~print:FSpec.print gen_filter

let gen_event =
  let open QCheck.Gen in
  let nfuncs = Array.length prog.Wet_ir.Program.funcs in
  map
    (fun (kind, (func, block, (value, addr))) ->
      {
        E.e_kind = E.kind_of_index kind;
        e_func = func;
        e_block = block;
        e_pos = 0;
        e_value = value;
        e_addr = addr;
        e_ts = 1;
      })
    (pair
       (int_range 0 (E.num_kinds - 1))
       (triple (int_range 0 (nfuncs - 1)) (int_range 0 6)
          (pair (int_range (-4) 24) (int_range (-1) 40))))

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                        *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (print f) = Ok f" ~count:500 arb_filter
    (fun f -> FSpec.parse (FSpec.print f) = Ok f)

let prop_matches_reference =
  QCheck.Test.make
    ~name:"compiled filter agrees with the reference evaluator" ~count:500
    QCheck.(
      make ~print:(fun (f, _) -> FSpec.print f)
        Gen.(pair gen_filter (list_size (int_range 1 40) gen_event)))
    (fun (f, events) ->
      let c = F.compile prog f in
      List.for_all (fun e -> F.matches c e = eval f e) events)

let test_parse_cases () =
  Alcotest.check filter_t "paper-style spec"
    (F.All [ F.Kind E.Store; F.Fn "main"; F.Addr (0x100, 0x1ff) ])
    (parse_exn "store & fn=main & addr in [0x100,0x1ff]");
  Alcotest.check filter_t "'&' binds tighter than '|'"
    (F.Any [ F.Kind E.Block_entry; F.All [ F.Kind E.Load; F.Block 2 ] ])
    (parse_exn "entry | load & block=2");
  Alcotest.check filter_t "negated group"
    (F.Not (F.Any [ F.Kind E.Load; F.Kind E.Store ]))
    (parse_exn "!(load | store)");
  Alcotest.check filter_t "'any' is True" F.True (parse_exn "any");
  Alcotest.check filter_t "val=N abbreviates a degenerate range"
    (F.Value (7, 7)) (parse_exn "val=7");
  Alcotest.check filter_t "whitespace-insensitive"
    (F.All [ F.Kind E.Use; F.Value (1, 2) ])
    (parse_exn "  use&val in [ 1 , 2 ]  ")

let test_parse_errors () =
  let bad s =
    match FSpec.parse s with
    | Ok f ->
      Alcotest.fail
        (Printf.sprintf "%S should not parse (got %s)" s (FSpec.print f))
    | Error m -> Alcotest.(check bool) "message non-empty" true (m <> "")
  in
  List.iter bad
    [ ""; "fn="; "addr in [5"; "load load"; "val in [9,3]"; "&& store";
      "frobnicate"; "block=x"; "(load"; "val in 3" ]

(* ------------------------------------------------------------------ *)
(* Kind masks and compilation                                          *)
(* ------------------------------------------------------------------ *)

let test_kind_mask () =
  Alcotest.(check int) "single kind"
    (E.kind_bit E.Store)
    (F.kind_mask (F.Kind E.Store));
  Alcotest.(check int) "value atoms restrict to value kinds" E.value_mask
    (F.kind_mask (F.Value (0, 9)));
  Alcotest.(check int) "conjunction intersects"
    (E.kind_bit E.Load)
    (F.kind_mask (F.All [ F.Kind E.Load; F.Addr (0, 9) ]));
  Alcotest.(check int) "disjunction unions"
    (E.kind_bit E.Load lor E.kind_bit E.Store)
    (F.kind_mask (F.Any [ F.Kind E.Load; F.Kind E.Store ]));
  Alcotest.(check int) "contradictions reject everything" 0
    (F.kind_mask (F.All [ F.Kind E.Block_entry; F.Value (0, 9) ]))

let test_unknown_function () =
  Alcotest.check_raises "compile rejects unknown names"
    (F.Unknown_function "no_such_fn") (fun () ->
      ignore (F.compile prog (F.Fn "no_such_fn")))

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_ring_wraparound () =
  let r = Ring.create 16 in
  Alcotest.(check int) "capacity" 16 (Ring.capacity r);
  for i = 0 to 99 do
    Ring.record r ~kind:(i mod E.num_kinds) ~func:i ~block:(2 * i) ~pos:i
      ~value:(3 * i) ~addr:(5 * i) ~ts:(i + 1) ~wall_ns:(1000 + i)
  done;
  Alcotest.(check int) "total counts every record" 100 (Ring.total r);
  Alcotest.(check int) "length is bounded by capacity" 16 (Ring.length r);
  List.iteri
    (fun j ((e : E.t), wall) ->
      let i = 84 + j in
      Alcotest.(check int) "oldest-to-newest order" (i + 1) e.E.e_ts;
      Alcotest.check
        (Alcotest.testable E.pp ( = ))
        "payload survives the flat encoding"
        {
          E.e_kind = E.kind_of_index (i mod E.num_kinds);
          e_func = i;
          e_block = 2 * i;
          e_pos = i;
          e_value = 3 * i;
          e_addr = 5 * i;
          e_ts = i + 1;
        }
        e;
      Alcotest.(check int) "wall stamp kept" (1000 + i) wall)
    (Ring.to_list r);
  let e0, _ = Ring.get r 0 in
  let last, _ = Ring.get r (Ring.length r - 1) in
  Alcotest.(check int) "get 0 is the oldest retained" 85 e0.E.e_ts;
  Alcotest.(check int) "get (length-1) is the newest" 100 last.E.e_ts;
  (* before wrapping, everything is retained in insertion order *)
  let small = Ring.create 8 in
  for i = 0 to 2 do
    Ring.record small ~kind:0 ~func:0 ~block:0 ~pos:i ~value:0 ~addr:(-1)
      ~ts:(i + 1) ~wall_ns:i
  done;
  Alcotest.(check (list int)) "no wrap: insertion order" [ 1; 2; 3 ]
    (List.map (fun ((e : E.t), _) -> e.E.e_ts) (Ring.to_list small));
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create 0))

(* ------------------------------------------------------------------ *)
(* Probes on a real run                                                *)
(* ------------------------------------------------------------------ *)

let run_with probes =
  let input = Wl.input (Wl.find "parser") ~scale:1 in
  Watch.with_armed probes (fun () -> Interp.run prog ~input)

let test_sampling () =
  let f = parse_exn "store & fn=main" in
  let count = Watch.probe ~name:"count" prog f Watch.Count in
  let sample = Watch.probe ~name:"sample" ~ring:4096 prog f (Watch.Sample 3) in
  ignore (run_with [ count; sample ]);
  let m = Watch.matches count in
  Alcotest.(check bool) "the filter matches something" true (m > 0);
  Alcotest.(check int) "probes see identical match streams" m
    (Watch.matches sample);
  Alcotest.(check (option reject)) "Count probes have no ring" None
    (Watch.ring count);
  let ring = Option.get (Watch.ring sample) in
  Alcotest.(check int) "1-in-3 sampling records ceil(m/3)"
    ((m + 2) / 3) (Ring.total ring)

let test_watchpoint_locates () =
  let f = parse_exn "store & fn=main" in
  (* calibrate K against what the workload actually produces *)
  let count = Watch.probe prog f Watch.Count in
  ignore (run_with [ count ]);
  let m = Watch.matches count in
  Alcotest.(check bool) "the filter matches something" true (m > 0);
  let k = min 5 m in
  let probe = Watch.probe prog f (Watch.Stop_at k) in
  let res = run_with [ probe ] in
  let ts =
    match Watch.stopped probe with
    | Some ts -> ts
    | None -> Alcotest.fail "watchpoint did not trigger"
  in
  Alcotest.(check int) "counting continues past the stop" m
    (Watch.matches probe);
  let ring = Option.get (Watch.ring probe) in
  Alcotest.(check int) "recording stops at the K-th match" k
    (Ring.total ring);
  let last, _ = Ring.get ring (Ring.length ring - 1) in
  Alcotest.(check int) "the stop timestamp is the K-th match's" last.E.e_ts
    ts;
  let wet = Builder.build res.Interp.trace in
  match Query.locate_time wet ts with
  | None -> Alcotest.fail "stopped timestamp not locatable"
  | Some (nid, i) ->
    let n = wet.W.nodes.(nid) in
    Alcotest.(check int) "located node runs the watched function"
      (F.func_id prog "main") n.W.n_func;
    Alcotest.(check bool) "located path contains the watched block" true
      (Array.exists (fun b -> b = last.E.e_block) n.W.n_blocks);
    (* round-trip: instance [i] of that node carries timestamp [ts] *)
    let copy = ref (-1) in
    for c = W.num_copies wet - 1 downto 0 do
      if W.node_of_copy wet c == n then copy := c
    done;
    Alcotest.(check bool) "node has at least one copy" true (!copy >= 0);
    Alcotest.(check int) "timestamp round-trips through the node label" ts
      (W.timestamp wet !copy i)

(* ------------------------------------------------------------------ *)
(* Query explain                                                       *)
(* ------------------------------------------------------------------ *)

let check_consistent (r : Ex.report) =
  Alcotest.(check bool) "report names at least one query" true
    (r.Ex.r_queries <> []);
  Alcotest.(check bool) "report touches at least one stream" true
    (r.Ex.r_streams <> []);
  List.iter
    (fun (s : Ex.stream_stats) ->
      Alcotest.(check bool) "all tallies are non-negative" true
        (s.Ex.e_fwd >= 0 && s.Ex.e_bwd >= 0 && s.Ex.e_seeks >= 0
         && s.Ex.e_seek_dist >= 0 && s.Ex.e_switches >= 0))
    r.Ex.r_streams;
  Alcotest.(check int) "total_steps sums the per-stream steps"
    (List.fold_left (fun a s -> a + Ex.steps s) 0 r.Ex.r_streams)
    (Ex.total_steps r);
  let agg =
    List.fold_left (fun a (_, (streams, _, _, _, _)) -> a + streams) 0
      (Ex.by_kind r)
  in
  Alcotest.(check int) "by_kind accounts for every stream" agg
    (List.length r.Ex.r_streams)

let test_explain_control_flow () =
  let res = Wl.run ~scale:1 (Wl.find "parser") in
  let w1 = Builder.build res.Interp.trace in
  List.iter
    (fun wet ->
      Query.park wet Query.Forward;
      Ex.arm ();
      let blocks = Query.control_flow wet Query.Forward ~f:(fun _ _ -> ()) in
      Ex.disarm ();
      let r = Ex.report () in
      Alcotest.(check bool) "control_flow noted as a query" true
        (List.mem "query.control_flow" r.Ex.r_queries);
      check_consistent r;
      Alcotest.(check int) "block executions regenerated"
        wet.W.stats.W.block_execs blocks;
      let ts_fwd, other =
        List.fold_left
          (fun (fwd, other) (s : Ex.stream_stats) ->
            match s.Ex.e_stream with
            | Ex.Ts _ -> (fwd + s.Ex.e_fwd, other)
            | _ -> (fwd, other + 1))
          (0, 0) r.Ex.r_streams
      in
      Alcotest.(check int)
        "a forward sweep pays exactly one forward ts step per path execution"
        wet.W.stats.W.path_execs ts_fwd;
      Alcotest.(check int) "and touches only ts streams" 0 other;
      Alcotest.(check int) "and never steps backward" 0
        (List.fold_left (fun a (s : Ex.stream_stats) -> a + s.Ex.e_bwd) 0
           r.Ex.r_streams))
    [ w1; Builder.pack w1 ]

let test_explain_slice () =
  let res = Wl.run ~scale:1 (Wl.find "parser") in
  let wet = Builder.pack (Builder.build res.Interp.trace) in
  (* slice an output so the dependence cone is non-trivial *)
  (match
     Query.copies_matching wet (function
       | Wet_ir.Instr.Output _ -> true
       | _ -> false)
   with
   | [] -> Alcotest.fail "workload has no outputs"
   | c :: _ ->
     Ex.arm ();
     ignore (Slice.backward wet c ((W.node_of_copy wet c).W.n_nexec - 1));
     Ex.disarm ());
  let r = Ex.report () in
  Alcotest.(check bool) "slice.backward noted as a query" true
    (List.mem "slice.backward" r.Ex.r_queries);
  check_consistent r;
  Alcotest.(check bool) "a dependence walk touches edge-label streams" true
    (List.exists
       (fun (s : Ex.stream_stats) ->
         match s.Ex.e_stream with
         | Ex.Label_src _ | Ex.Label_dst _ -> true
         | _ -> false)
       r.Ex.r_streams);
  (* disarmed queries record nothing *)
  Ex.reset ();
  ignore (Query.load_values wet ~f:(fun _ _ -> ()));
  let r = Ex.report () in
  Alcotest.(check bool) "disarmed queries leave no trace" true
    (r.Ex.r_queries = [] && r.Ex.r_streams = [])

let () =
  Alcotest.run "watch"
    [
      ( "spec",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          Alcotest.test_case "worked examples" `Quick test_parse_cases;
          Alcotest.test_case "rejections" `Quick test_parse_errors;
        ] );
      ( "filter",
        [
          QCheck_alcotest.to_alcotest prop_matches_reference;
          Alcotest.test_case "kind masks" `Quick test_kind_mask;
          Alcotest.test_case "unknown function" `Quick test_unknown_function;
        ] );
      ( "ring",
        [ Alcotest.test_case "wraparound" `Quick test_ring_wraparound ] );
      ( "probes",
        [
          Alcotest.test_case "count and sample" `Quick test_sampling;
          Alcotest.test_case "watchpoint locates" `Quick
            test_watchpoint_locates;
        ] );
      ( "explain",
        [
          Alcotest.test_case "forward control flow" `Quick
            test_explain_control_flow;
          Alcotest.test_case "backward slice" `Quick test_explain_slice;
        ] );
    ]
