(* The session-cursor contract: a WET is an immutable container, all
   traversal state lives in per-session handles — so any interleaving
   of query sequences on N sessions, including from separate domains,
   must produce answers byte-identical to running each sequence
   serially on a fresh session. Exercised on both tiers with
   QCheck-generated scripts, plus the salvage-damage behaviour of
   sessions (lazy Missing_stream vs strict open). *)

module W = Wet_core.Wet
module Builder = Wet_core.Builder
module Query = Wet_core.Query
module Slice = Wet_core.Slice
module SR = Wet_analyses.State_reconstruct
module Container = Wet_core.Container
module Faultsim = Wet_faultsim.Faultsim
module Interp = Wet_interp.Interp

(* ------------------------------------------------------------------ *)
(* Fixture: one program with recursion, arrays and output so every    *)
(* query family has work to do; both tiers.                           *)
(* ------------------------------------------------------------------ *)

let program_src =
  {|
global arr[10];
fn fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main() {
  var i = 0;
  while (i < 10) { arr[i] = fib(i); i = i + 1; }
  var sum = 0;
  var j = 0;
  while (j < 10) { sum = sum + arr[j]; j = j + 1; }
  print(sum);
}
|}

let tiers =
  lazy
    (let prog = Wet_minic.Frontend.compile_exn program_src in
     let res = Interp.run prog ~input:[||] in
     let w1 = Builder.build res.Interp.trace in
     [ ("tier1", w1); ("tier2", Builder.pack w1) ])

(* ------------------------------------------------------------------ *)
(* The op vocabulary: each op is self-contained (parks its own        *)
(* cursors where it needs them) and reduces its full answer to a      *)
(* deterministic string, so comparing per-script answer lists is the  *)
(* byte-identity check. Out-of-range inputs are part of the contract  *)
(* too: their structured errors must be identical as well.            *)
(* ------------------------------------------------------------------ *)

type op =
  | Cf_fwd
  | Cf_bwd
  | Loads
  | Addrs
  | Slice_b of int  (** backward slice from copy [k mod num_copies] *)
  | At of int  (** memory image at a timestamp *)
  | Locate of int
  | Cf_from of int * int

let op_to_string = function
  | Cf_fwd -> "cf_fwd"
  | Cf_bwd -> "cf_bwd"
  | Loads -> "loads"
  | Addrs -> "addrs"
  | Slice_b k -> Printf.sprintf "slice_b %d" k
  | At t -> Printf.sprintf "at %d" t
  | Locate t -> Printf.sprintf "locate %d" t
  | Cf_from (t, n) -> Printf.sprintf "cf_from %d %d" t n

let run_op sess op =
  let wet = W.Session.wet sess in
  let h = ref 0 and n = ref 0 in
  let add x y =
    incr n;
    h := Hashtbl.hash (!h, x, y)
  in
  let digest () = Printf.sprintf "%d:%d" !n !h in
  try
    match op with
    | Cf_fwd ->
      Query.Session.park sess Query.Forward;
      let c = Query.Session.control_flow sess Query.Forward ~f:add in
      Printf.sprintf "cf %d %s" c (digest ())
    | Cf_bwd ->
      Query.Session.park sess Query.Backward;
      let c = Query.Session.control_flow sess Query.Backward ~f:add in
      Printf.sprintf "cf %d %s" c (digest ())
    | Loads ->
      let c = Query.Session.load_values sess ~f:add in
      Printf.sprintf "loads %d %s" c (digest ())
    | Addrs ->
      let c = Query.Session.addresses sess ~f:add in
      Printf.sprintf "addrs %d %s" c (digest ())
    | Slice_b k ->
      let copies = Query.copies_matching wet (fun _ -> true) in
      let c = List.nth copies (k mod List.length copies) in
      let r = Slice.Session.backward sess c 0 ~f:add in
      Printf.sprintf "slice %d/%d/%d %s" r.Slice.instances r.Slice.copies
        r.Slice.stmts (digest ())
    | At ts ->
      let st = SR.at_session sess ~ts in
      List.iter (fun a -> add a (SR.read st a)) (SR.written st);
      Printf.sprintf "at %s" (digest ())
    | Locate ts -> (
      match Query.Session.locate_time sess ts with
      | None -> "locate none"
      | Some (node, i) -> Printf.sprintf "locate %d@%d" node i)
    | Cf_from (ts, steps) ->
      let c = Query.Session.control_flow_from sess ~start_ts:ts ~steps ~f:add in
      Printf.sprintf "cf_from %d %s" c (digest ())
  with
  | Wet_error.Error e -> "wet_error: " ^ Wet_error.message e
  | W.Missing_stream s -> "missing: " ^ s

let run_script sess ops = List.map (run_op sess) ops

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (3, return Cf_fwd);
        (3, return Cf_bwd);
        (3, return Loads);
        (3, return Addrs);
        (2, map (fun k -> Slice_b k) (int_bound 1000));
        (2, map (fun t -> At (1 + t)) (int_bound 300));
        (2, map (fun t -> Locate t) (int_bound 400));
        ( 1,
          map2
            (fun t n -> Cf_from (1 + t, n))
            (int_bound 300) (int_bound 12) );
      ])

(* K scripts (one per session) plus a seed for the interleaving. *)
let gen_case =
  QCheck.Gen.(
    let* k = int_range 2 4 in
    let* scripts =
      array_repeat k (list_size (int_range 1 5) gen_op)
    in
    let* seed = int_bound 1_000_000 in
    return (scripts, seed))

let print_case (scripts, seed) =
  Printf.sprintf "seed=%d [%s]" seed
    (String.concat " | "
       (Array.to_list
          (Array.map
             (fun ops -> String.concat "; " (List.map op_to_string ops))
             scripts)))

let arb_case = QCheck.make ~print:print_case gen_case

(* A deterministic merge of the scripts: per-script order preserved,
   cross-script order drawn from [seed]. *)
let interleave ~seed scripts =
  let st = Random.State.make [| seed |] in
  let rem = Array.map (fun l -> l) scripts in
  let order = ref [] in
  let total = Array.fold_left (fun a l -> a + List.length l) 0 scripts in
  for _ = 1 to total do
    let nonempty =
      Array.to_list rem
      |> List.mapi (fun k l -> (k, l))
      |> List.filter (fun (_, l) -> l <> [])
      |> List.map fst
    in
    let k = List.nth nonempty (Random.State.int st (List.length nonempty)) in
    match rem.(k) with
    | op :: tl ->
      rem.(k) <- tl;
      order := (k, op) :: !order
    | [] -> assert false
  done;
  List.rev !order

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Serial reference: each script on its own fresh session, one after
   another. *)
let serial_answers wet scripts =
  Array.map (fun ops -> run_script (W.open_session wet) ops) scripts

let check_identical name serial got =
  Array.iteri
    (fun k want ->
      if got.(k) <> want then
        Alcotest.failf "%s: session %d diverged\n  serial: %s\n  got:    %s"
          name k
          (String.concat " / " want)
          (String.concat " / " got.(k)))
    serial;
  true

(* Interleaved in one thread: K live sessions, ops merged randomly. *)
let prop_interleaved name wet (scripts, seed) =
  let serial = serial_answers wet scripts in
  let sessions = Array.map (fun _ -> W.open_session wet) scripts in
  let answers = Array.map (fun _ -> ref []) scripts in
  List.iter
    (fun (k, op) -> answers.(k) := run_op sessions.(k) op :: !(answers.(k)))
    (interleave ~seed scripts);
  check_identical (name ^ "/interleaved") serial
    (Array.map (fun r -> List.rev !r) answers)

(* Truly concurrent: the scripts split across two domains, each domain
   opening its own sessions over the shared container. *)
let prop_domains name wet (scripts, _seed) =
  let serial = serial_answers wet scripts in
  let n = Array.length scripts in
  let half = n / 2 in
  let run lo hi () =
    Array.init (hi - lo) (fun i ->
        run_script (W.open_session wet) scripts.(lo + i))
  in
  let d1 = Domain.spawn (run 0 half) in
  let d2 = Domain.spawn (run half n) in
  let r1 = Domain.join d1 in
  let r2 = Domain.join d2 in
  check_identical (name ^ "/domains") serial (Array.append r1 r2)

let qcheck_tests =
  List.concat_map
    (fun (name, wet) ->
      [
        QCheck_alcotest.to_alcotest
          (QCheck.Test.make
             ~name:(name ^ ": interleaved sessions = serial")
             ~count:40 arb_case (prop_interleaved name wet));
        QCheck_alcotest.to_alcotest
          (QCheck.Test.make
             ~name:(name ^ ": two domains = serial")
             ~count:10 arb_case (prop_domains name wet));
      ])
    (Lazy.force tiers)

(* ------------------------------------------------------------------ *)
(* Sessions over salvage damage                                        *)
(* ------------------------------------------------------------------ *)

(* Flip a bit in the middle of [sec] and salvage-load the result. *)
let damaged_wet wet sec =
  W.rewind wet;
  let data = Container.encode wet in
  let sections =
    match Container.examine data with
    | Ok h -> h.Container.hl_sections
    | Error f -> Alcotest.failf "examine: %s" (Container.fault_message f)
  in
  let s =
    List.find (fun s -> s.Container.sec_name = sec) sections
  in
  let off = s.Container.sec_offset + (s.Container.sec_length / 2) in
  let mutilated = Faultsim.apply (Faultsim.Bit_flip { offset = off; bit = 5 }) data in
  match Container.decode ~salvage:true mutilated with
  | Ok (w, _) -> w
  | Error f -> Alcotest.failf "salvage: %s" (Container.fault_message f)

let test_salvaged_session () =
  List.iter
    (fun (name, wet) ->
      let w = damaged_wet wet "labels.values" in
      Alcotest.(check (list string))
        (name ^ ": damage recorded") [ "labels.values" ] w.W.damage;
      (* a lazy session opens fine... *)
      let s = W.open_session w in
      (* ...answers queries on surviving sections... *)
      Query.Session.park s Query.Forward;
      let full = W.open_session wet in
      Query.Session.park full Query.Forward;
      let cf sess =
        let acc = ref [] in
        ignore
          (Query.Session.control_flow sess Query.Forward ~f:(fun f b ->
               acc := (f, b) :: !acc));
        !acc
      in
      Alcotest.(check bool)
        (name ^ ": control flow survives") true (cf s = cf full);
      (* ...and raises Missing_stream only where the damage is *)
      (match Query.Session.load_values s ~f:(fun _ _ -> ()) with
      | _ -> Alcotest.failf "%s: lost values must raise" name
      | exception W.Missing_stream m ->
        Alcotest.(check string) (name ^ ": names the stream") "labels.values" m))
    (Lazy.force tiers)

let test_strict_open () =
  List.iter
    (fun (name, wet) ->
      let w = damaged_wet wet "labels.values" in
      (match W.open_session ~strict:true w with
      | _ -> Alcotest.failf "%s: strict open on damage must raise" name
      | exception Wet_error.Error e ->
        Alcotest.(check bool)
          (name ^ ": Query stage") true
          (e.Wet_error.stage = Wet_error.Query));
      (* strict open on a clean container is fine *)
      ignore (W.open_session ~strict:true wet))
    (Lazy.force tiers)

(* Opening a session is cheap and does not disturb existing ones. *)
let test_open_isolation () =
  List.iter
    (fun (name, wet) ->
      let a = W.open_session wet in
      Query.Session.park a Query.Forward;
      let before = run_op a Cf_fwd in
      let b = W.open_session wet in
      let b_ans = run_op b Cf_fwd in
      let again = run_op a Cf_fwd in
      Alcotest.(check string) (name ^ ": b matches a") before b_ans;
      Alcotest.(check string) (name ^ ": a undisturbed") before again)
    (Lazy.force tiers)

let () =
  Alcotest.run "session"
    [
      ("interleaving", qcheck_tests);
      ( "salvage",
        [
          Alcotest.test_case "lazy sessions raise Missing_stream" `Quick
            test_salvaged_session;
          Alcotest.test_case "strict open_session raises Wet_error" `Quick
            test_strict_open;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "open_session leaves peers untouched" `Quick
            test_open_isolation;
        ] );
    ]
