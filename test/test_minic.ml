module Frontend = Wet_minic.Frontend
module Interp = Wet_interp.Interp

let run_outputs ?(input = [||]) src =
  match Frontend.compile src with
  | Error m -> Alcotest.failf "compilation failed: %s" m
  | Ok prog -> Array.to_list (Interp.outputs_only prog ~input)

let check_program name ?input src expected =
  Alcotest.(check (list int)) name expected (run_outputs ?input src)

let test_arith () =
  check_program "arithmetic"
    "fn main() { print(1 + 2 * 3); print((1 + 2) * 3); print(7 / 2); print(7 % 3); print(-5); }"
    [ 7; 9; 3; 1; -5 ];
  check_program "bitwise"
    "fn main() { print(12 & 10); print(12 | 10); print(12 ^ 10); print(1 << 4); print(37 >> 2); }"
    [ 8; 14; 6; 16; 9 ]

let test_comparisons () =
  check_program "comparisons"
    "fn main() { print(1 < 2); print(2 < 1); print(2 <= 2); print(3 > 1); print(3 >= 4); print(5 == 5); print(5 != 5); }"
    [ 1; 0; 1; 1; 0; 1; 0 ];
  check_program "logical"
    "fn main() { print(1 && 2); print(1 && 0); print(0 || 3); print(0 || 0); print(!0); print(!7); }"
    [ 1; 0; 1; 0; 1; 0 ]

let test_precedence () =
  check_program "precedence mix"
    "fn main() { print(1 + 2 < 4 && 3 * 2 == 6); print(2 + 3 << 1); print(1 | 2 ^ 2 & 3); }"
    [ 1; 10; 1 ]

let test_control_flow () =
  check_program "if-else"
    "fn main() { var x = 5; if (x > 3) { print(1); } else { print(2); } if (x > 9) { print(3); } print(4); }"
    [ 1; 4 ];
  check_program "else-if chain"
    {|fn classify(x) {
        if (x < 0) { return -1; }
        else if (x == 0) { return 0; }
        else if (x < 10) { return 1; }
        else { return 2; }
      }
      fn main() { print(classify(-5)); print(classify(0)); print(classify(7)); print(classify(99)); }|}
    [ -1; 0; 1; 2 ];
  check_program "while"
    "fn main() { var i = 0; var s = 0; while (i < 5) { s = s + i; i = i + 1; } print(s); }"
    [ 10 ];
  check_program "for"
    "fn main() { var s = 0; for (var i = 0; i < 4; i = i + 1) { s = s + i * i; } print(s); }"
    [ 14 ];
  check_program "break-continue"
    {|fn main() {
        var i = 0; var s = 0;
        while (1) {
          i = i + 1;
          if (i > 10) { break; }
          if (i % 2 == 0) { continue; }
          s = s + i;
        }
        print(s);
      }|}
    [ 25 ]

let test_functions () =
  check_program "recursion (fib)"
    {|fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
      fn main() { print(fib(10)); }|}
    [ 55 ];
  check_program "mutual calls"
    {|fn is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
      fn is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }
      fn main() { print(is_even(10)); print(is_odd(7)); }|}
    [ 1; 1 ];
  check_program "ackermann"
    {|fn ack(m, n) {
        if (m == 0) { return n + 1; }
        if (n == 0) { return ack(m - 1, 1); }
        return ack(m - 1, ack(m, n - 1));
      }
      fn main() { print(ack(2, 3)); }|}
    [ 9 ];
  check_program "call for effect"
    {|global g;
      fn bump() { g = g + 1; return g; }
      fn main() { bump(); bump(); print(bump()); }|}
    [ 3 ]

let test_globals_arrays () =
  check_program "global scalar"
    "global g; fn main() { g = 42; print(g); g = g + 1; print(g); }"
    [ 42; 43 ];
  check_program "array"
    {|global a[5];
      fn main() {
        for (var i = 0; i < 5; i = i + 1) { a[i] = i * i; }
        var s = 0;
        for (var j = 0; j < 5; j = j + 1) { s = s + a[j]; }
        print(s);
        print(a[3]);
      }|}
    [ 30; 9 ];
  check_program "shadowing"
    "global x; fn main() { x = 1; var x = 2; print(x); }"
    [ 2 ]

let test_input () =
  check_program "input stream" ~input:[| 10; 20; 12 |]
    "fn main() { var a = input(); var b = input(); print(a + b); print(input()); }"
    [ 30; 12 ]

let test_comments () =
  check_program "comments"
    {|// leading comment
      fn main() {
        /* block
           comment */
        print(1); // trailing
      }|}
    [ 1 ]


let test_negative_arithmetic () =
  (* OCaml division truncates toward zero; MiniC inherits that *)
  check_program "negative div/rem"
    "fn main() { var a = -7; var b = 2; print(a / b); print(a % b); print(7 / -2); print(7 % -2); }"
    [ -3; -1; -3; 1 ];
  check_program "negation chains"
    "fn main() { var x = 5; print(-x); print(- -x); print(!(x - 5)); }"
    [ -5; 5; 1 ]

let test_shift_edges () =
  check_program "large shift saturates"
    "fn main() { var one = 1; var big = 100; print(one << big); print(one << 36); }"
    [ 1 lsl (100 land 63); 1 lsl 36 ];
  check_program "shift by 63 is zero"
    "fn main() { var one = 1; var s = 63; print(one << s); print((-8) >> s); print(8 >> s); }"
    [ 0; -1; 0 ]

let test_deep_nesting () =
  (* parser recursion depth and codegen join-block stacking *)
  let opens = String.concat "" (List.init 40 (fun i ->
      Printf.sprintf "if (x >= %d) { " i)) in
  let closes = String.concat "" (List.init 40 (fun _ -> "}")) in
  let src =
    Printf.sprintf "fn main() { var x = 20; %s x = x + 1000; %s print(x); }"
      opens closes
  in
  (* the innermost body runs only if every guard x >= i (i < 40) holds,
     i.e. never for x = 20, so x stays 20 *)
  check_program "40-deep nested ifs" src [ 20 ]

let test_error_positions () =
  (match Frontend.compile "fn main() {\n  var x = ;\n}" with
   | Ok _ -> Alcotest.fail "expected error"
   | Error m ->
     Alcotest.(check bool) ("line number in: " ^ m) true
       (String.length m >= 6 && String.sub m 0 6 = "line 2"))

let expect_compile_error name src fragment =
  match Frontend.compile src with
  | Ok _ -> Alcotest.failf "%s: expected a compile error" name
  | Error m ->
    let contains =
      let nh = String.length m and nn = String.length fragment in
      let rec go i = i + nn <= nh && (String.sub m i nn = fragment || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) (name ^ ": " ^ m) true contains

let test_syntax_errors () =
  expect_compile_error "missing semicolon" "fn main() { var x = 1 }" "expected";
  expect_compile_error "unbalanced paren" "fn main() { print((1); }" "expected";
  expect_compile_error "bad toplevel" "var x = 1;" "expected 'global' or 'fn'";
  expect_compile_error "unterminated comment" "fn main() { /* }" "unterminated";
  expect_compile_error "bad char" "fn main() { print(1 ? 2); }" "unexpected character"

let test_semantic_errors () =
  expect_compile_error "no main" "fn f() { return 1; }" "no main";
  expect_compile_error "main with params" "fn main(x) { }" "main must take no parameters";
  expect_compile_error "unknown variable" "fn main() { print(y); }" "unknown variable";
  expect_compile_error "unknown function" "fn main() { print(f(1)); }" "unknown function";
  expect_compile_error "arity" "fn f(a, b) { return a; } fn main() { print(f(1)); }" "argument";
  expect_compile_error "redeclared var" "fn main() { var x = 1; var x = 2; }" "redeclared";
  expect_compile_error "redeclared fn" "fn f() {} fn f() {} fn main() { }" "redeclared";
  expect_compile_error "break outside loop" "fn main() { break; }" "break outside";
  expect_compile_error "continue outside loop" "fn main() { continue; }" "continue outside";
  expect_compile_error "unknown array" "fn main() { a[0] = 1; }" "unknown global";
  expect_compile_error "redeclared global" "global g; global g; fn main() { }" "redeclared"

(* Compiled programs always pass the IR validator. *)
let prop_codegen_validates =
  QCheck.Test.make ~name:"codegen emits valid IR" ~count:25 QCheck.small_int
    (fun seed ->
      let rng = Wet_util.Prng.create (seed + 1000) in
      let stmts =
        List.init 4 (fun i ->
            match Wet_util.Prng.int rng 4 with
            | 0 -> Printf.sprintf "x = x + %d;" i
            | 1 -> Printf.sprintf "if (x > %d) { x = x - 1; }" i
            | 2 -> Printf.sprintf "var y%d = x * 2; x = y%d - 1;" i i
            | _ -> Printf.sprintf "while (x > %d) { x = x - 3; }" (i * 2))
      in
      let src =
        Printf.sprintf "fn main() { var x = 9; %s print(x); }"
          (String.concat " " stmts)
      in
      match Frontend.compile src with
      | Ok p ->
        Wet_ir.Validate.errors p = []
      | Error _ -> false)


(* Differential semantics fuzz: random expression trees are rendered to
   MiniC and independently evaluated in OCaml with the IR's own
   arithmetic; parser precedence, codegen and interpreter must agree
   with the direct evaluation. *)
type exp =
  | Lit of int
  | Bin of Wet_ir.Instr.binop * exp * exp
  | Cmp of Wet_ir.Instr.cmpop * exp * exp
  | Neg of exp
  | Not of exp

let rec render = function
  | Lit n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Bin (op, a, b) ->
    let sym =
      match op with
      | Wet_ir.Instr.Add -> "+" | Wet_ir.Instr.Sub -> "-"
      | Wet_ir.Instr.Mul -> "*" | Wet_ir.Instr.Div -> "/"
      | Wet_ir.Instr.Rem -> "%" | Wet_ir.Instr.And -> "&"
      | Wet_ir.Instr.Or -> "|" | Wet_ir.Instr.Xor -> "^"
      | Wet_ir.Instr.Shl -> "<<" | Wet_ir.Instr.Shr -> ">>"
    in
    Printf.sprintf "(%s %s %s)" (render a) sym (render b)
  | Cmp (op, a, b) ->
    let sym =
      match op with
      | Wet_ir.Instr.Eq -> "==" | Wet_ir.Instr.Ne -> "!="
      | Wet_ir.Instr.Lt -> "<" | Wet_ir.Instr.Le -> "<="
      | Wet_ir.Instr.Gt -> ">" | Wet_ir.Instr.Ge -> ">="
    in
    Printf.sprintf "(%s %s %s)" (render a) sym (render b)
  | Neg a -> Printf.sprintf "(-%s)" (render a)
  | Not a -> Printf.sprintf "(!%s)" (render a)

(* None = the expression traps (division by zero) *)
let rec eval = function
  | Lit n -> Some n
  | Bin (op, a, b) -> (
    match (eval a, eval b) with
    | Some va, Some vb -> Wet_ir.Eval.binop op va vb
    | _ -> None)
  | Cmp (op, a, b) -> (
    match (eval a, eval b) with
    | Some va, Some vb -> Some (Wet_ir.Eval.cmp op va vb)
    | _ -> None)
  | Neg a -> Option.map (Wet_ir.Eval.unop Wet_ir.Instr.Neg) (eval a)
  | Not a -> Option.map (Wet_ir.Eval.unop Wet_ir.Instr.Not) (eval a)

let rec gen_exp rng depth =
  if depth = 0 || Wet_util.Prng.int rng 4 = 0 then
    Lit (Wet_util.Prng.int rng 41 - 20)
  else
    match Wet_util.Prng.int rng 8 with
    | 0 -> Neg (gen_exp rng (depth - 1))
    | 1 -> Not (gen_exp rng (depth - 1))
    | 2 | 3 ->
      let ops =
        Wet_ir.Instr.[ Eq; Ne; Lt; Le; Gt; Ge ]
      in
      Cmp (List.nth ops (Wet_util.Prng.int rng 6),
           gen_exp rng (depth - 1), gen_exp rng (depth - 1))
    | _ ->
      let ops =
        Wet_ir.Instr.[ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr ]
      in
      Bin (List.nth ops (Wet_util.Prng.int rng 10),
           gen_exp rng (depth - 1), gen_exp rng (depth - 1))

let prop_expression_semantics =
  QCheck.Test.make ~name:"expression semantics match direct evaluation"
    ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Wet_util.Prng.create (seed * 31 + 5) in
      let e = gen_exp rng 4 in
      let src = Printf.sprintf "fn main() { print(%s); }" (render e) in
      match eval e with
      | Some expected -> run_outputs src = [ expected ]
      | None -> (
        (* the program must trap, not produce a value *)
        match Frontend.compile src with
        | Error _ -> false
        | Ok prog -> (
          match Interp.outputs_only prog ~input:[||] with
          | _ -> false
          | exception Wet_error.Error _ -> true)))

let () =
  Alcotest.run "minic"
    [
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "globals and arrays" `Quick test_globals_arrays;
          Alcotest.test_case "input" `Quick test_input;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "negative arithmetic" `Quick test_negative_arithmetic;
          Alcotest.test_case "shift edges" `Quick test_shift_edges;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
        ] );
      ( "errors",
        [
          Alcotest.test_case "syntax" `Quick test_syntax_errors;
          Alcotest.test_case "semantic" `Quick test_semantic_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_codegen_validates;
          QCheck_alcotest.to_alcotest prop_expression_semantics;
        ] );
    ]
