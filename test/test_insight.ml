(* Exercises the deprecated module-level cursor API alongside the new
   Session surface; the alias stays until the legacy API is removed. *)
[@@@alert "-deprecated"]

(* wet_insight: telemetry invariants, the Sizes.detail <-> Sizes.current
   bit agreement, stats JSON round trips, and the bench-check gate
   (including the exactly-at-threshold edge). *)

module Bidir = Wet_bistream.Bidir
module Stream = Wet_bistream.Stream
module Sequitur = Wet_sequitur.Sequitur
module Spec = Wet_workloads.Spec
module Interp = Wet_interp.Interp
module W = Wet_core.Wet
module Builder = Wet_core.Builder
module Sizes = Wet_core.Sizes
module Json = Wet_insight.Json
module Report = Wet_insight.Report
module Bench = Wet_insight.Bench
module Metric_docs = Wet_insight.Metric_docs
module Obs_diff = Wet_insight.Obs_diff

let all_variants =
  List.concat_map (fun m -> [ (m, 1); (m, 2); (m, 4) ]) Bidir.all_meths

let variant_name (m, c) = Printf.sprintf "%s/%d" (Bidir.meth_name m) c

let fixtures =
  [
    ("stride", Array.init 1200 (fun i -> (3 * i) - 100));
    ("periodic", Array.init 1200 (fun i -> [| 3; 1; 4; 1; 5; 9 |].(i mod 6)));
    ( "noisy",
      let rng = Wet_util.Prng.create 7 in
      Array.init 1200 (fun _ -> Wet_util.Prng.int rng 10_000) );
  ]

(* ------------------------------------------------------------------ *)
(* Bidir / Stream telemetry                                            *)
(* ------------------------------------------------------------------ *)

let test_bidir_dictionary () =
  List.iter
    (fun (name, arr) ->
      List.iter
        (fun (m, c) ->
          let tag = Printf.sprintf "%s %s" name (variant_name (m, c)) in
          let b = Bidir.compress m ~ctx:c arr in
          let tl = Bidir.telemetry b in
          Alcotest.(check int)
            (tag ^ " lookups = length + ctx")
            (Array.length arr + c) tl.Bidir.tl_lookups;
          Alcotest.(check int)
            (tag ^ " hits + misses = lookups")
            tl.Bidir.tl_lookups
            (tl.Bidir.tl_hits + tl.Bidir.tl_misses);
          (* construction is not traversal *)
          Alcotest.(check int) (tag ^ " fwd 0") 0 tl.Bidir.tl_fwd_steps;
          Alcotest.(check int) (tag ^ " bwd 0") 0 tl.Bidir.tl_bwd_steps;
          Alcotest.(check int) (tag ^ " switches 0") 0 tl.Bidir.tl_dir_switches;
          (* sliding the window re-classifies entries, but the pops undo
             the pushes: rewinding to the origin restores the figures *)
          ignore (Bidir.to_array b);
          Bidir.seek b 0;
          let tl' = Bidir.telemetry b in
          Alcotest.(check int)
            (tag ^ " hits restored after rewind")
            tl.Bidir.tl_hits tl'.Bidir.tl_hits)
        all_variants)
    fixtures

let test_bidir_steps () =
  let arr = Array.init 600 (fun i -> i * 7 mod 323) in
  List.iter
    (fun (m, c) ->
      let tag = variant_name (m, c) in
      let b = Bidir.compress m ~ctx:c arr in
      ignore (Bidir.to_array b);
      let tl = Bidir.telemetry b in
      Alcotest.(check int) (tag ^ " to_array = m fwd steps") 600
        tl.Bidir.tl_fwd_steps;
      Alcotest.(check int) (tag ^ " no bwd yet") 0 tl.Bidir.tl_bwd_steps;
      Alcotest.(check int) (tag ^ " no switch yet") 0 tl.Bidir.tl_dir_switches;
      ignore (Bidir.step_backward b);
      let tl = Bidir.telemetry b in
      Alcotest.(check int) (tag ^ " one bwd") 1 tl.Bidir.tl_bwd_steps;
      Alcotest.(check int) (tag ^ " one switch") 1 tl.Bidir.tl_dir_switches;
      (* peeks are invisible: a step plus its inverse, counters restored *)
      let before = Bidir.telemetry b in
      ignore (Bidir.peek_forward b);
      ignore (Bidir.peek_backward b);
      let after = Bidir.telemetry b in
      Alcotest.(check int) (tag ^ " peek fwd invisible")
        before.Bidir.tl_fwd_steps after.Bidir.tl_fwd_steps;
      Alcotest.(check int) (tag ^ " peek bwd invisible")
        before.Bidir.tl_bwd_steps after.Bidir.tl_bwd_steps;
      Alcotest.(check int) (tag ^ " peek switch invisible")
        before.Bidir.tl_dir_switches after.Bidir.tl_dir_switches;
      Bidir.reset_telemetry b;
      let tl = Bidir.telemetry b in
      Alcotest.(check int) (tag ^ " reset fwd") 0 tl.Bidir.tl_fwd_steps;
      Alcotest.(check int) (tag ^ " reset bwd") 0 tl.Bidir.tl_bwd_steps;
      Alcotest.(check int) (tag ^ " reset switches") 0
        tl.Bidir.tl_dir_switches;
      (* dictionary figures survive the reset: they are representation,
         not history *)
      Alcotest.(check int) (tag ^ " lookups survive reset") (600 + c)
        tl.Bidir.tl_lookups)
    all_variants

(* compressed_bits must equal the analytic formula reconstructed from
   telemetry alone: per classified entry one flag bit, 32 payload bits
   per miss, hit-payload bits per hit, the 32-bit window, and for the
   FCM family the two tables (sized exactly as [compress] sizes them). *)
let test_bits_accounting () =
  let ceil_log2 n =
    let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
    go 0 1
  in
  List.iter
    (fun (name, arr) ->
      List.iter
        (fun (m, c) ->
          let tag = Printf.sprintf "%s %s" name (variant_name (m, c)) in
          let b = Bidir.compress m ~ctx:c arr in
          let tl = Bidir.telemetry b in
          let hit_payload =
            match m with
            | Bidir.Fcm | Bidir.Dfcm -> 0
            | Bidir.Last_n | Bidir.Last_stride -> ceil_log2 c
          in
          let table_bits =
            match m with
            | Bidir.Fcm | Bidir.Dfcm ->
              let mlen = Array.length arr in
              2 * (1 lsl min 12 (max 2 (ceil_log2 (max 2 mlen) - 5))) * 32
            | Bidir.Last_n | Bidir.Last_stride -> 0
          in
          let expected =
            (32 * c) + tl.Bidir.tl_lookups
            + (32 * tl.Bidir.tl_misses)
            + (hit_payload * tl.Bidir.tl_hits)
            + table_bits
          in
          Alcotest.(check int)
            (tag ^ " compressed_bits = telemetry accounting")
            expected (Bidir.compressed_bits b))
        all_variants)
    fixtures

let test_raw_stream_telemetry () =
  let arr = Array.init 100 (fun i -> i) in
  let s = Stream.compress_with `Raw arr in
  let tl = Stream.telemetry s in
  Alcotest.(check int) "raw: no lookups" 0 tl.Stream.tl_lookups;
  Alcotest.(check int) "raw: no hits" 0 tl.Stream.tl_hits;
  Alcotest.(check int) "raw: no misses" 0 tl.Stream.tl_misses;
  ignore (Stream.step_forward s);
  ignore (Stream.step_forward s);
  ignore (Stream.step_backward s);
  let tl = Stream.telemetry s in
  Alcotest.(check int) "raw: fwd counted" 2 tl.Stream.tl_fwd_steps;
  Alcotest.(check int) "raw: bwd counted" 1 tl.Stream.tl_bwd_steps;
  Alcotest.(check int) "raw: switch counted" 1 tl.Stream.tl_dir_switches;
  (* seeks and random reads are O(1) on raw data: not traversal *)
  Stream.seek s 50;
  ignore (Stream.read_at s 10);
  let tl' = Stream.telemetry s in
  Alcotest.(check int) "raw: seek not counted" tl.Stream.tl_fwd_steps
    tl'.Stream.tl_fwd_steps;
  Stream.reset_telemetry s;
  let tl = Stream.telemetry s in
  Alcotest.(check int) "raw: reset" 0 tl.Stream.tl_fwd_steps

(* ------------------------------------------------------------------ *)
(* Sequitur telemetry                                                  *)
(* ------------------------------------------------------------------ *)

let test_sequitur_telemetry () =
  List.iter
    (fun (name, arr) ->
      let g = Sequitur.build arr in
      let tl = Sequitur.telemetry g in
      Alcotest.(check int) (name ^ " input counted") (Array.length arr)
        tl.Sequitur.tl_input;
      Alcotest.(check int)
        (name ^ " rules = 1 + created - inlined")
        (1 + tl.Sequitur.tl_rules_created - tl.Sequitur.tl_rules_inlined)
        tl.Sequitur.tl_rules;
      Alcotest.(check int) (name ^ " rules agrees") (Sequitur.num_rules g)
        tl.Sequitur.tl_rules;
      Alcotest.(check int) (name ^ " symbols agree")
        (Sequitur.grammar_symbols g) tl.Sequitur.tl_symbols;
      Alcotest.(check (array int)) (name ^ " expand unaffected") arr
        (Sequitur.expand g))
    fixtures;
  let g = Sequitur.build (Array.init 200 (fun i -> i mod 4)) in
  let tl = Sequitur.telemetry g in
  Alcotest.(check bool) "repetitive input produces digram hits" true
    (tl.Sequitur.tl_digram_hits > 0);
  Alcotest.(check bool) "fresh digrams were indexed" true
    (tl.Sequitur.tl_digram_misses > 0);
  Alcotest.(check bool) "hits imply rules were created" true
    (tl.Sequitur.tl_rules_created > 0)

(* ------------------------------------------------------------------ *)
(* Sizes.detail agreement, both tiers x two workloads                  *)
(* ------------------------------------------------------------------ *)

let wet_fixtures =
  lazy
    (List.concat_map
       (fun (name, scale) ->
         let w = Spec.find name in
         let res = Spec.run ~scale w in
         let w1 = Builder.build res.Interp.trace in
         let w2 = Builder.pack w1 in
         [ (name ^ " tier1", w1); (name ^ " tier2", w2) ])
       [ ("197.parser", 8); ("164.gzip", 2) ])

let test_detail_agrees () =
  List.iter
    (fun (tag, wet) ->
      let d = Sizes.detail wet in
      let c = Sizes.current wet in
      let sum = List.fold_left (fun a k -> a + k.Sizes.sc_bits) 0 d.Sizes.d_classes in
      Alcotest.(check int) (tag ^ " total = sum of classes") sum
        d.Sizes.d_total_bits;
      (* the coarse view is the same bits, to the bit: 8 * bytes *)
      Alcotest.(check (float 0.)) (tag ^ " detail = current to the bit")
        (float_of_int d.Sizes.d_total_bits)
        (8. *. c.Sizes.total_bytes);
      let bits_of kind =
        List.fold_left
          (fun a k -> if k.Sizes.sc_kind = kind then a + k.Sizes.sc_bits else a)
          0 d.Sizes.d_classes
      in
      Alcotest.(check (float 0.)) (tag ^ " ts class = ts bytes")
        (float_of_int (bits_of "ts"))
        (8. *. c.Sizes.ts_bytes);
      Alcotest.(check (float 0.)) (tag ^ " value classes = vals bytes")
        (float_of_int (bits_of "uvals" + bits_of "pattern"))
        (8. *. c.Sizes.vals_bytes);
      Alcotest.(check (float 0.)) (tag ^ " label classes = edge bytes")
        (float_of_int (bits_of "label.src" + bits_of "label.dst"))
        (8. *. c.Sizes.edge_bytes);
      List.iter
        (fun k ->
          Alcotest.(check int)
            (Printf.sprintf "%s %s: hits <= lookups" tag k.Sizes.sc_kind)
            k.Sizes.sc_hits
            (min k.Sizes.sc_hits k.Sizes.sc_lookups);
          Alcotest.(check int)
            (Printf.sprintf "%s %s: raw bits = 32/value" tag k.Sizes.sc_kind)
            (32 * k.Sizes.sc_values) k.Sizes.sc_raw_bits;
          let method_total =
            List.fold_left (fun a (_, n) -> a + n) 0 k.Sizes.sc_methods
          in
          Alcotest.(check int)
            (Printf.sprintf "%s %s: method mix covers streams" tag
               k.Sizes.sc_kind)
            k.Sizes.sc_streams method_total)
        d.Sizes.d_classes)
    (Lazy.force wet_fixtures)

(* ------------------------------------------------------------------ *)
(* JSON parser + stats report round trip                               *)
(* ------------------------------------------------------------------ *)

let test_json_units () =
  let roundtrips v =
    match Json.parse (Json.to_string v) with
    | Ok v' -> Alcotest.(check string) "round trip" (Json.to_string v) (Json.to_string v')
    | Error e -> Alcotest.fail e
  in
  List.iter roundtrips
    [
      Json.Null;
      Json.Bool true;
      Json.Num 0.;
      Json.Num (-17.);
      Json.Num 3.25;
      Json.Num 1e-9;
      Json.Str "plain";
      Json.Str "esc \"quotes\" \\ \n \t and \x01 control";
      Json.Arr [];
      Json.Obj [];
      Json.Arr [ Json.Num 1.; Json.Str "two"; Json.Null ];
      Json.Obj
        [
          ("a", Json.Arr [ Json.Obj [ ("nested", Json.Bool false) ] ]);
          ("b", Json.Num 42.);
        ];
    ];
  (match Json.parse "  { \"k\" : [ 1 , 2.5 , true ] }  " with
   | Ok (Json.Obj [ ("k", Json.Arr [ Json.Num a; Json.Num b; Json.Bool true ]) ]) ->
     Alcotest.(check (float 0.)) "int" 1. a;
     Alcotest.(check (float 0.)) "float" 2.5 b
   | Ok j -> Alcotest.failf "unexpected parse: %s" (Json.to_string j)
   | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "parsed garbage: %s" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_report_roundtrip () =
  List.iter
    (fun (tag, wet) ->
      let r = Report.of_wet ~label:tag wet in
      let j = Report.to_json r in
      match Json.parse (Json.to_string j) with
      | Error e -> Alcotest.fail e
      | Ok j' ->
        Alcotest.(check string) (tag ^ " identical after reparse")
          (Json.to_string j) (Json.to_string j');
        let total =
          Option.bind (Json.member "total_bits" j') Json.to_int
          |> Option.get
        in
        let stream_sum =
          Option.bind (Json.member "streams" j') Json.to_list
          |> Option.get
          |> List.fold_left
               (fun a s ->
                 a + Option.get (Option.bind (Json.member "bits" s) Json.to_int))
               0
        in
        Alcotest.(check int) (tag ^ " parsed stream bits sum to total")
          total stream_sum;
        let d = Sizes.detail wet in
        Alcotest.(check int) (tag ^ " parsed total = Sizes.detail")
          d.Sizes.d_total_bits total)
    (Lazy.force wet_fixtures)

(* ------------------------------------------------------------------ *)
(* bench-check                                                         *)
(* ------------------------------------------------------------------ *)

let sample ?(workload = "w") ?(build = 100.) ?(sps = 1000.) ?(bpl1 = 4.)
    ?(bpl2 = 1.) ?(r1 = 4.) ?(r2 = 16.) ?(query = 10.) ?(steps = 1000)
    ?(peak = 0) () =
  {
    Bench.workload;
    scale = 5;
    stmts = 100_000;
    stmts_per_sec = sps;
    bytes_per_label_t1 = bpl1;
    bytes_per_label_t2 = bpl2;
    ratio_t1 = r1;
    ratio_t2 = r2;
    build_p50_ms = build;
    build_p95_ms = build *. 1.2;
    query_p50_ms = query;
    query_p95_ms = query *. 1.2;
    query_steps = steps;
    query_switches = 40;
    build_peak_words = peak;
    wet_words = 0;
    shards = 0;
    stream_p50_ms = 0.;
    stream_progress_p50_ms = 0.;
    query_decode_steps = 0;
    query_bits_touched = 0;
    qlog_overhead_frac = 0.;
    stream_checkpoint_p50_ms = 0.;
    checkpoint_overhead_frac = 0.;
    resume_ms = 0.;
    serve_p50_ms = 0.;
    serve_p95_ms = 0.;
    serve_mt_p50_ms = 0.;
    serve_mt_rps = 0.;
  }

let run_of samples =
  { Bench.label = "test"; quick = true; repeat = 3; warmup = 1; samples }

let th = Bench.{ wall_frac = 0.25; size_frac = 0.02 }

let find_verdict metric verdicts =
  List.find (fun v -> v.Bench.v_metric = metric) verdicts

let test_threshold_edges () =
  (* lower-is-better, exactly at threshold: 100 -> 125 at 25% passes *)
  let v =
    Bench.check th
      ~prev:(run_of [ sample ~build:100. () ])
      ~cur:(run_of [ sample ~build:125. () ])
    |> find_verdict "build_p50_ms"
  in
  Alcotest.(check bool) "exactly at wall threshold passes" false
    v.Bench.v_regressed;
  Alcotest.(check (float 1e-12)) "worse_frac = 0.25" 0.25 v.Bench.v_worse_frac;
  (* just over fails *)
  let v =
    Bench.check th
      ~prev:(run_of [ sample ~build:100. () ])
      ~cur:(run_of [ sample ~build:125.2 () ])
    |> find_verdict "build_p50_ms"
  in
  Alcotest.(check bool) "just over wall threshold fails" true
    v.Bench.v_regressed;
  (* higher-is-better: stmts/s 1000 -> 750 is exactly -25% *)
  let v =
    Bench.check th
      ~prev:(run_of [ sample ~sps:1000. () ])
      ~cur:(run_of [ sample ~sps:750. () ])
    |> find_verdict "stmts_per_sec"
  in
  Alcotest.(check bool) "exactly at threshold (higher-better) passes" false
    v.Bench.v_regressed;
  let v =
    Bench.check th
      ~prev:(run_of [ sample ~sps:1000. () ])
      ~cur:(run_of [ sample ~sps:749. () ])
    |> find_verdict "stmts_per_sec"
  in
  Alcotest.(check bool) "below threshold (higher-better) fails" true
    v.Bench.v_regressed;
  (* size metrics gate tightly: ratio 16 -> 15.6 is -2.5% > 2% *)
  let v =
    Bench.check th
      ~prev:(run_of [ sample ~r2:16. () ])
      ~cur:(run_of [ sample ~r2:15.6 () ])
    |> find_verdict "ratio_t2"
  in
  Alcotest.(check bool) "ratio regression caught" true v.Bench.v_regressed;
  (* improvements never regress *)
  let vs =
    Bench.check th
      ~prev:(run_of [ sample () ])
      ~cur:(run_of [ sample ~build:50. ~sps:2000. ~bpl2:0.5 ~r2:32. () ])
  in
  Alcotest.(check bool) "improvement passes" false (Bench.regressed vs);
  (* zero baseline never anchors a regression *)
  let v =
    Bench.check th
      ~prev:(run_of [ sample ~build:0. () ])
      ~cur:(run_of [ sample ~build:999. () ])
    |> find_verdict "build_p50_ms"
  in
  Alcotest.(check bool) "zero baseline guard" false v.Bench.v_regressed;
  (* workloads only in cur are skipped *)
  let vs =
    Bench.check th
      ~prev:(run_of [ sample ~workload:"old" () ])
      ~cur:(run_of [ sample ~workload:"new" () ])
  in
  Alcotest.(check int) "disjoint workloads: no verdicts" 0 (List.length vs)

let test_bench_roundtrip () =
  let r =
    run_of
      [
        sample ~workload:"a" ~build:12.345 ();
        sample ~workload:"b" ~sps:9.75e6 ~steps:123456 ();
      ]
  in
  let path = Filename.temp_file "wet_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Bench.save r path;
      match Bench.load path with
      | Error e -> Alcotest.fail e
      | Ok r' ->
        Alcotest.(check string) "label" r.Bench.label r'.Bench.label;
        Alcotest.(check bool) "quick" r.Bench.quick r'.Bench.quick;
        Alcotest.(check int) "repeat" r.Bench.repeat r'.Bench.repeat;
        Alcotest.(check int) "samples" 2 (List.length r'.Bench.samples);
        List.iter2
          (fun (a : Bench.sample) (b : Bench.sample) ->
            Alcotest.(check string) "workload" a.Bench.workload b.Bench.workload;
            Alcotest.(check int) "steps" a.Bench.query_steps b.Bench.query_steps;
            Alcotest.(check (float 1e-9)) "build" a.Bench.build_p50_ms
              b.Bench.build_p50_ms;
            Alcotest.(check (float 1e-3)) "sps" a.Bench.stmts_per_sec
              b.Bench.stmts_per_sec)
          r.Bench.samples r'.Bench.samples;
        (* a round-tripped run never regresses against itself *)
        Alcotest.(check bool) "self-compare clean" false
          (Bench.regressed (Bench.check th ~prev:r ~cur:r')))

let test_percentile () =
  let xs = [ 5.; 1.; 4.; 2.; 3. ] in
  Alcotest.(check (float 0.)) "p50 of 1..5" 3. (Bench.percentile 0.5 xs);
  Alcotest.(check (float 0.)) "p95 of 1..5" 5. (Bench.percentile 0.95 xs);
  Alcotest.(check (float 0.)) "p0 clamps" 1. (Bench.percentile 0. xs);
  Alcotest.(check (float 0.)) "p100" 5. (Bench.percentile 1. xs);
  Alcotest.(check (float 0.)) "singleton" 7. (Bench.percentile 0.5 [ 7. ])

(* ------------------------------------------------------------------ *)
(* Metric docs cover the live registry                                 *)
(* ------------------------------------------------------------------ *)

let test_metric_docs_cover_registry () =
  Wet_obs.Sink.enable ();
  Wet_obs.Metrics.reset ();
  (* run a pipeline that instantiates the dynamic families too *)
  let w = Spec.find "197.parser" in
  let res = Spec.run ~scale:6 w in
  let w1 = Builder.build res.Interp.trace in
  let w2 = Builder.pack w1 in
  Wet_watch.Explain.arm ();
  Wet_core.Query.park w2 Wet_core.Query.Forward;
  ignore (Wet_core.Query.control_flow w2 Wet_core.Query.Forward ~f:(fun _ _ -> ()));
  ignore (Wet_watch.Explain.publish ());
  Wet_watch.Explain.disarm ();
  let undocumented =
    List.filter_map
      (fun (name, _) ->
        match Metric_docs.lookup name with Some _ -> None | None -> Some name)
      (Wet_obs.Metrics.snapshot ())
  in
  Wet_obs.Sink.disable ();
  Alcotest.(check (list string)) "every registered instrument is documented"
    [] undocumented;
  (* the pattern resolver really is resolving patterns *)
  Alcotest.(check bool) "pack.method pattern resolves" true
    (Metric_docs.lookup "pack.method.dfcm/4.streams" <> None);
  Alcotest.(check bool) "watch pattern resolves" true
    (Metric_docs.lookup "watch.myprobe.matches" <> None);
  Alcotest.(check bool) "unknown name is unknown" true
    (Metric_docs.lookup "no.such.metric" = None)

(* ------------------------------------------------------------------ *)

(* `wet obs diff` semantics. The load-bearing edge case: two exports
   with no instrument in common must read as zero overlap, never as
   "nothing changed". *)

let inst name value = { Obs_diff.i_name = name; i_kind = "counter"; i_value = value }

let test_obs_diff_zero_overlap () =
  let d = Obs_diff.diff [ inst "a.x" 3; inst "a.y" 1 ] [ inst "b.z" 5 ] in
  Alcotest.(check int) "no overlap" 0 d.Obs_diff.d_overlap;
  Alcotest.(check bool) "nothing compared, so nothing changed" true
    (d.Obs_diff.d_changed = []);
  Alcotest.(check (list string)) "only in A" [ "a.x"; "a.y" ] d.Obs_diff.d_only_a;
  Alcotest.(check (list string)) "only in B" [ "b.z" ] d.Obs_diff.d_only_b;
  (* and the empty-input corner *)
  let e = Obs_diff.diff [] [] in
  Alcotest.(check int) "empty inputs overlap nothing" 0 e.Obs_diff.d_overlap

let test_obs_diff_changes () =
  let a = [ inst "p" 10; inst "q" 100; inst "r" 7; inst "s" 0 ] in
  let b = [ inst "p" 11; inst "q" 300; inst "r" 7; inst "s" 4 ] in
  let d = Obs_diff.diff a b in
  Alcotest.(check int) "all four overlap" 4 d.Obs_diff.d_overlap;
  Alcotest.(check (list string)) "unchanged rows dropped, |rel| order"
    [ "s"; "q"; "p" ]
    (List.map (fun (r : Obs_diff.row) -> r.Obs_diff.d_name) d.Obs_diff.d_changed);
  (match d.Obs_diff.d_changed with
   | s :: q :: p :: _ ->
     (* zero baseline: rel = (b - a) / max 1 |a| stays finite *)
     Alcotest.(check (float 1e-9)) "rel with zero baseline" 4.0 s.Obs_diff.d_rel;
     Alcotest.(check (float 1e-9)) "rel doubles count" 2.0 q.Obs_diff.d_rel;
     Alcotest.(check (float 1e-9)) "small rel last" 0.1 p.Obs_diff.d_rel
   | _ -> Alcotest.fail "expected three changed rows");
  Alcotest.(check bool) "no exclusives" true
    (d.Obs_diff.d_only_a = [] && d.Obs_diff.d_only_b = [])

let () =
  Alcotest.run "insight"
    [
      ( "telemetry",
        [
          Alcotest.test_case "bidir dictionary invariants" `Quick
            test_bidir_dictionary;
          Alcotest.test_case "bidir step counters" `Quick test_bidir_steps;
          Alcotest.test_case "compressed_bits accounting" `Quick
            test_bits_accounting;
          Alcotest.test_case "raw stream telemetry" `Quick
            test_raw_stream_telemetry;
          Alcotest.test_case "sequitur telemetry" `Quick
            test_sequitur_telemetry;
        ] );
      ( "sizes",
        [
          Alcotest.test_case "detail agrees with current (both tiers)" `Quick
            test_detail_agrees;
        ] );
      ( "json",
        [
          Alcotest.test_case "parser units" `Quick test_json_units;
          Alcotest.test_case "stats report round trip" `Quick
            test_report_roundtrip;
        ] );
      ( "bench-check",
        [
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "threshold edges" `Quick test_threshold_edges;
          Alcotest.test_case "save/load round trip" `Quick
            test_bench_roundtrip;
        ] );
      ( "metric-docs",
        [
          Alcotest.test_case "registry coverage" `Quick
            test_metric_docs_cover_registry;
        ] );
      ( "obs-diff",
        [
          Alcotest.test_case "zero overlap is not 'no change'" `Quick
            test_obs_diff_zero_overlap;
          Alcotest.test_case "relative deltas and ordering" `Quick
            test_obs_diff_changes;
        ] );
    ]
