(* Exercises the deprecated module-level cursor API alongside the new
   Session surface; the alias stays until the legacy API is removed. *)
[@@@alert "-deprecated"]

(* The wet_qprof attribution invariants: per-query cost totals are
   non-negative and sum exactly to the process-global telemetry delta
   across random query interleavings on both tiers (the snapshot-delta
   telescoping the subsystem is built on); nested contexts count each
   step exactly once in the merged [qprof.*] metrics; qlog entries
   round-trip through their JSONL encoding; the planner's exact
   [Query.estimate] agrees with the armed recording; and with no
   context open the profiler arms nothing and records nothing. *)

module Qprof = Wet_qprof.Qprof
module Qlog = Wet_qprof.Qlog
module Telemetry = Wet_bistream.Telemetry
module Sequitur = Wet_sequitur.Sequitur
module Ex = Wet_watch.Explain
module Metrics = Wet_obs.Metrics
module Json = Wet_insight.Json
module Wl = Wet_workloads.Spec
module Builder = Wet_core.Builder
module W = Wet_core.Wet
module Query = Wet_core.Query
module Slice = Wet_core.Slice

(* One real workload, both tiers, built once. *)
let w1 =
  lazy
    (let res = Wl.run ~scale:1 (Wl.find "parser") in
     Builder.build res.Wet_interp.Interp.trace)

let w2 = lazy (Builder.pack (Lazy.force w1))

let wet_of_tier tier2 = if tier2 then Lazy.force w2 else Lazy.force w1

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* A query-op language for random interleavings                        *)
(* ------------------------------------------------------------------ *)

type op = Cf | Vals | Addrs | At of int | Sl | Pack

let shape_of = function
  | Cf -> "trace/cf"
  | Vals -> "trace/values"
  | Addrs -> "trace/addresses"
  | At _ -> "at"
  | Sl -> "slice/backward"
  | Pack -> "pack"

let run_op wet = function
  | Cf ->
    Query.park wet Query.Forward;
    ignore (Query.control_flow wet Query.Forward ~f:(fun _ _ -> ()))
  | Vals -> ignore (Query.load_values wet ~f:(fun _ _ -> ()))
  | Addrs -> ignore (Query.addresses wet ~f:(fun _ _ -> ()))
  | At seed ->
    let total = wet.W.stats.W.path_execs in
    let ts = 1 + (seed mod max 1 total) in
    ignore (Query.locate_time wet ts);
    ignore (Query.control_flow_from wet ~start_ts:ts ~steps:3 ~f:(fun _ _ -> ()))
  | Sl -> (
    match Query.copies_matching wet (fun i -> Wet_ir.Instr.has_def i) with
    | c :: _ ->
      ignore (Slice.backward wet c ((W.node_of_copy wet c).W.n_nexec - 1))
    | [] -> ())
  (* A build inside a profiled region: exercises the Sequitur global
     counters, and [compress]'s own telemetry save/restore. *)
  | Pack -> ignore (Builder.pack (Lazy.force w1))

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (3, return Cf);
        (3, return Vals);
        (3, return Addrs);
        (3, map (fun s -> At s) (int_range 0 10_000));
        (2, return Sl);
        (1, return Pack);
      ])

let gen_plan = QCheck.Gen.(pair bool (list_size (int_range 1 6) gen_op))

let print_plan (tier2, ops) =
  Printf.sprintf "tier2=%b [%s]" tier2
    (String.concat "; " (List.map shape_of ops))

let arb_plan = QCheck.make ~print:print_plan gen_plan

let bi_fields (c : Qprof.cost) =
  ( c.Qprof.c_fwd, c.Qprof.c_bwd, c.Qprof.c_switches, c.Qprof.c_hits,
    c.Qprof.c_misses, c.Qprof.c_bits )

let seq_fields (c : Qprof.cost) =
  ( c.Qprof.c_seq_input, c.Qprof.c_seq_digram_hits,
    c.Qprof.c_seq_digram_misses, c.Qprof.c_seq_rules_created,
    c.Qprof.c_seq_rules_inlined )

let sum_totals profs =
  List.fold_left
    (fun acc (p : Qprof.profile) -> Qprof.add_cost acc p.Qprof.p_total)
    Qprof.zero_cost profs

(* Disjoint sequential windows telescope: the per-query totals sum to
   exactly the global telemetry delta of the whole batch, whatever the
   interleaving and tier. This is the PR's acceptance invariant. *)
let prop_sum_consistency =
  QCheck.Test.make ~name:"query costs sum to the global telemetry delta"
    ~count:30 arb_plan (fun (tier2, ops) ->
      let wet = wet_of_tier tier2 in
      let g0 = Telemetry.snapshot () in
      let s0 = Sequitur.global_telemetry () in
      let profs =
        List.map
          (fun op ->
            let _, p = Qprof.run (shape_of op) (fun () -> run_op wet op) in
            p)
          ops
      in
      let d = Telemetry.delta ~before:g0 ~after:(Telemetry.snapshot ()) in
      let sd =
        Sequitur.global_delta ~before:s0 ~after:(Sequitur.global_telemetry ())
      in
      let sum = sum_totals profs in
      bi_fields sum
      = ( d.Telemetry.g_fwd, d.Telemetry.g_bwd, d.Telemetry.g_switches,
          d.Telemetry.g_hits, d.Telemetry.g_misses, d.Telemetry.g_bits )
      && seq_fields sum
         = ( sd.Sequitur.gs_input, sd.Sequitur.gs_digram_hits,
             sd.Sequitur.gs_digram_misses, sd.Sequitur.gs_rules_created,
             sd.Sequitur.gs_rules_inlined )
      && List.for_all
           (fun (p : Qprof.profile) ->
             (* flat contexts: self = total, and both are physical *)
             Qprof.nonneg_cost p.Qprof.p_total
             && p.Qprof.p_self = p.Qprof.p_total
             && p.Qprof.p_outcome = "ok")
           profs)

(* Nested contexts: the inner window is part of the outer one, self
   costs telescope, and the merged process-view counters count every
   step exactly once (outer self + inner total = outer total = what the
   default registry receives). *)
let prop_nesting =
  QCheck.Test.make ~name:"nested contexts telescope and merge once"
    ~count:20 arb_plan (fun (tier2, ops) ->
      let wet = wet_of_tier tier2 in
      let evens, odds =
        List.partition (fun i -> i mod 2 = 0) (List.mapi (fun i _ -> i) ops)
        |> fun (e, o) ->
        ( List.map (List.nth ops) e,
          List.map (List.nth ops) o )
      in
      Wet_obs.Sink.enable ();
      Fun.protect ~finally:Wet_obs.Sink.disable @@ fun () ->
      Metrics.reset ();
      let g0 = Telemetry.snapshot () in
      let inner = ref None in
      let _, outer =
        Qprof.run "outer" (fun () ->
            List.iter (run_op wet) evens;
            let _, pi =
              Qprof.run "inner" (fun () -> List.iter (run_op wet) odds)
            in
            inner := Some pi)
      in
      let pi : Qprof.profile = Option.get !inner in
      let d = Telemetry.delta ~before:g0 ~after:(Telemetry.snapshot ()) in
      let nonneg6 (a, b, c, d', e, f) =
        a >= 0 && b >= 0 && c >= 0 && d' >= 0 && e >= 0 && f >= 0
      in
      bi_fields outer.Qprof.p_total
      = ( d.Telemetry.g_fwd, d.Telemetry.g_bwd, d.Telemetry.g_switches,
          d.Telemetry.g_hits, d.Telemetry.g_misses, d.Telemetry.g_bits )
      (* inner ⊆ outer, field-wise *)
      && nonneg6 (bi_fields outer.Qprof.p_self)
      (* self + child = total, exactly *)
      && bi_fields
           (Qprof.add_cost outer.Qprof.p_self pi.Qprof.p_total)
         = bi_fields outer.Qprof.p_total
      (* the merged registry counted each step exactly once *)
      && Metrics.value (Metrics.counter "qprof.fwd_steps")
         = outer.Qprof.p_total.Qprof.c_fwd
      && Metrics.value (Metrics.counter "qprof.bits_touched")
         = outer.Qprof.p_total.Qprof.c_bits
      && Metrics.value (Metrics.counter "qprof.queries") = 2
      && Qprof.depth () = 0)

(* ------------------------------------------------------------------ *)
(* qlog round trip                                                     *)
(* ------------------------------------------------------------------ *)

let gen_cost =
  QCheck.Gen.(
    map
      (fun l ->
        match l with
        | [ a; b; c; d; e; f; g; h; i; j; k; l'; m ] ->
          {
            Qprof.c_fwd = a;
            c_bwd = b;
            c_switches = c;
            c_hits = d;
            c_misses = e;
            c_bits = f;
            c_seq_input = g;
            c_seq_digram_hits = h;
            c_seq_digram_misses = i;
            c_seq_rules_created = j;
            c_seq_rules_inlined = k;
            c_wall_ns = l';
            c_alloc_words = m;
          }
        | _ -> assert false)
      (list_repeat 13 (int_range 0 1_000_000_000)))

let gen_entry =
  QCheck.Gen.(
    let word = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
    map
      (fun (((shape, params), cost), ((streams, queries), outcome)) ->
        {
          Qlog.e_shape = shape;
          e_params = params;
          e_cost = cost;
          e_streams = streams;
          e_queries = queries;
          e_outcome = outcome;
        })
      (pair
         (pair
            (pair
               (oneofl
                  [
                    "trace/cf"; "trace/values"; "slice/backward"; "at";
                    "paths"; "bench/sweep";
                  ])
               (list_size (int_range 0 3) (pair word word)))
            gen_cost)
         (pair
            (pair (int_range 0 500) (list_size (int_range 0 3) word))
            (oneofl [ "ok"; "error: Not_found" ]))))

let arb_entry =
  QCheck.make
    ~print:(fun e -> Json.to_string (Qlog.to_json e))
    gen_entry

let prop_qlog_roundtrip =
  QCheck.Test.make ~name:"qlog entries round-trip through JSONL" ~count:300
    arb_entry (fun e ->
      Qlog.parse_line (Json.to_string (Qlog.to_json e)) = Ok e)

let test_qlog_file () =
  let path = Filename.temp_file "wet_qlog" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let wet = Lazy.force w2 in
  let _, p1 =
    Qprof.run ~params:[ ("kind", "cf") ] "trace/cf" (fun () -> run_op wet Cf)
  in
  let _, p2 = Qprof.run "trace/values" (fun () -> run_op wet Vals) in
  Qlog.append path p1;
  Qlog.append path p2;
  (match Qlog.load path with
   | Error m -> Alcotest.fail m
   | Ok entries ->
     Alcotest.(check int) "two lines" 2 (List.length entries);
     Alcotest.(check bool) "first entry matches its profile" true
       (List.nth entries 0 = Qlog.entry_of_profile p1);
     let sums = Qlog.summarize entries in
     Alcotest.(check int) "two shapes" 2 (List.length sums);
     let hottest = List.nth sums 0 and other = List.nth sums 1 in
     Alcotest.(check bool) "hottest shape first" true
       (hottest.Qlog.s_wall_total_ns >= other.Qlog.s_wall_total_ns));
  (* the first malformed line poisons the load, with its line number *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc "{\"schema\":\"wet-qlog/9\"}\n";
  close_out oc;
  match Qlog.load path with
  | Ok _ -> Alcotest.fail "expected malformed-line error"
  | Error m ->
    Alcotest.(check bool)
      (Printf.sprintf "error cites line 3: %s" m)
      true
      (has_sub m ":3:")

(* ------------------------------------------------------------------ *)
(* Estimated vs actual                                                 *)
(* ------------------------------------------------------------------ *)

(* The control-flow planner model is exact on both tiers: one forward
   timestamp step per path execution, no seeks from a parked start. *)
let test_estimate_cf () =
  List.iter
    (fun tier2 ->
      let wet = wet_of_tier tier2 in
      Query.park wet Query.Forward;
      let _, p =
        Qprof.run "trace/cf" (fun () ->
            ignore (Query.control_flow wet Query.Forward ~f:(fun _ _ -> ())))
      in
      match Query.estimate wet "trace/cf" with
      | [ e ] ->
        Alcotest.(check string) "class" "ts" e.Query.est_kind;
        Alcotest.(check bool) "exact" true e.Query.est_exact;
        let actual =
          List.fold_left
            (fun acc (s : Ex.stream_stats) ->
              if Ex.stream_kind s.Ex.e_stream = "ts" then acc + Ex.steps s
              else acc)
            0 p.Qprof.p_streams
        in
        Alcotest.(check int)
          (Printf.sprintf "estimate = recording (tier2=%b)" tier2)
          e.Query.est_steps actual
      | ests ->
        Alcotest.fail
          (Printf.sprintf "expected one ts estimate, got %d"
             (List.length ests)))
    [ false; true ]

(* Inexact estimates still name the classes the query actually lands
   on. *)
let test_estimate_classes () =
  let wet = Lazy.force w2 in
  let check_shape shape op =
    let _, p = Qprof.run shape (fun () -> run_op wet op) in
    let touched =
      List.map (fun (s : Ex.stream_stats) -> Ex.stream_kind s.Ex.e_stream)
        p.Qprof.p_streams
    in
    List.iter
      (fun (e : Query.class_estimate) ->
        if e.Query.est_steps > 0 then
          Alcotest.(check bool)
            (Printf.sprintf "%s: estimated class %s was touched" shape
               e.Query.est_kind)
            true
            (List.mem e.Query.est_kind touched))
      (Query.estimate wet shape)
  in
  check_shape "trace/values" Vals;
  (* slice estimates are bounds over *possible* walks (a given slice may
     follow only label-free local dependences), so only the full-sweep
     shape pins estimated classes to touched classes *)
  let slice_ests = Query.estimate wet "slice/backward" in
  Alcotest.(check bool) "slice has a plan" true (slice_ests <> []);
  List.iter
    (fun (e : Query.class_estimate) ->
      Alcotest.(check bool) "slice estimates are bounds" false
        e.Query.est_exact)
    slice_ests

(* ------------------------------------------------------------------ *)
(* Off = free                                                          *)
(* ------------------------------------------------------------------ *)

let test_disabled () =
  Alcotest.(check bool) "no context" false (Qprof.active ());
  Alcotest.(check bool) "explain disarmed" false !Ex.armed;
  let v0 = Metrics.value (Metrics.counter "qprof.queries") in
  let wet = Lazy.force w2 in
  run_op wet Cf;
  run_op wet Vals;
  Alcotest.(check bool) "still disarmed" false !Ex.armed;
  Alcotest.(check int) "nothing recorded" v0
    (Metrics.value (Metrics.counter "qprof.queries"))

let test_error_outcome () =
  let res, p =
    Qprof.run "boom" (fun () ->
        ignore (run_op (Lazy.force w1) Cf);
        raise Exit)
  in
  Alcotest.(check bool) "Error result" true (res = Error Exit);
  Alcotest.(check bool) "error outcome" true
    (has_sub p.Qprof.p_outcome "error:");
  Alcotest.(check int) "stack unwound" 0 (Qprof.depth ());
  Alcotest.(check bool) "disarmed after unwind" false !Ex.armed;
  Alcotest.(check bool) "cost still physical" true
    (Qprof.nonneg_cost p.Qprof.p_total)

let () =
  Alcotest.run "wet_qprof"
    [
      ( "attribution",
        [
          QCheck_alcotest.to_alcotest prop_sum_consistency;
          QCheck_alcotest.to_alcotest prop_nesting;
        ] );
      ( "qlog",
        [
          QCheck_alcotest.to_alcotest prop_qlog_roundtrip;
          Alcotest.test_case "append/load/summarize" `Quick test_qlog_file;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "trace/cf is exact on both tiers" `Quick
            test_estimate_cf;
          Alcotest.test_case "estimated classes are touched" `Quick
            test_estimate_classes;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "off means off" `Quick test_disabled;
          Alcotest.test_case "exceptions unwind cleanly" `Quick
            test_error_outcome;
        ] );
    ]
