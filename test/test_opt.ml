module Frontend = Wet_minic.Frontend
module Interp = Wet_interp.Interp
module Driver = Wet_opt.Driver
module Spec = Wet_workloads.Spec
module Program = Wet_ir.Program
module Instr = Wet_ir.Instr

let count_stmts p =
  Array.fold_left (fun acc f -> acc + Wet_ir.Func.num_stmts f) 0
    p.Program.funcs

let count_matching p pred =
  let n = ref 0 in
  Program.iter_stmts p (fun _ i -> if pred i then incr n);
  !n

let test_folds_constants () =
  let p =
    Frontend.compile_exn
      "fn main() { var a = 2 + 3 * 4; var b = a - a; print(a + b); }"
  in
  let o = Driver.optimize p in
  (* after folding, no arithmetic remains *)
  Alcotest.(check int) "no binops left" 0
    (count_matching o (function Instr.Binop _ -> true | _ -> false));
  Alcotest.(check (array int)) "same output"
    (Interp.outputs_only p ~input:[||])
    (Interp.outputs_only o ~input:[||])

let test_dce_removes_unused () =
  let p =
    Frontend.compile_exn
      "fn main() { var unused = 1 + 2; var x = 5; print(x); }"
  in
  let o = Driver.optimize p in
  Alcotest.(check bool) "smaller" true (count_stmts o < count_stmts p);
  Alcotest.(check (array int)) "same output"
    (Interp.outputs_only p ~input:[||])
    (Interp.outputs_only o ~input:[||])

let test_branch_folding_prunes_cfg () =
  let p =
    Frontend.compile_exn
      {|fn main() {
          var debug = 0;
          if (debug) { print(111); print(222); }
          print(1);
        }|}
  in
  let o = Driver.optimize p in
  (* the constant branch folds and the dead arm disappears *)
  Alcotest.(check int) "no branches left" 0
    (count_matching o (function Instr.Branch _ -> true | _ -> false));
  Alcotest.(check bool) "fewer blocks" true
    (Array.length o.Program.funcs.(0).Wet_ir.Func.blocks
     < Array.length p.Program.funcs.(0).Wet_ir.Func.blocks);
  Alcotest.(check (array int)) "same output" [| 1 |]
    (Interp.outputs_only o ~input:[||])

let test_cse () =
  let p =
    Frontend.compile_exn
      "fn main() { var a = input(); var x = a * a + a * a; print(x); }"
  in
  let o = Driver.optimize p in
  let muls p =
    count_matching p (function Instr.Binop (Instr.Mul, _, _, _) -> true | _ -> false)
  in
  Alcotest.(check int) "one multiply" 1 (muls o);
  Alcotest.(check (array int)) "same output"
    (Interp.outputs_only p ~input:[| 7 |])
    (Interp.outputs_only o ~input:[| 7 |])

let test_traps_preserved () =
  (* an unused division by zero must not be folded or removed *)
  let p =
    Frontend.compile_exn
      "fn main() { var z = 0; var boom = 1 / z; print(9); }"
  in
  let o = Driver.optimize p in
  let trap prog =
    match Interp.outputs_only prog ~input:[||] with
    | _ -> false
    | exception Wet_error.Error _ -> true
  in
  Alcotest.(check bool) "original traps" true (trap p);
  Alcotest.(check bool) "optimised still traps" true (trap o)

let test_level_zero_identity () =
  let p = Spec.compile (Spec.find "go") in
  Alcotest.(check bool) "level 0 is identity" true (Driver.optimize ~level:0 p == p)

(* The heavyweight property: on every bundled workload, the optimised
   program produces identical outputs and strictly fewer executed
   statements. *)
let test_workloads_preserved () =
  List.iter
    (fun w ->
      let scale = max 1 (w.Spec.timing_scale / 8) in
      let p = Spec.compile w in
      let o = Driver.optimize p in
      let input = Spec.input w ~scale in
      let r1 = Interp.run p ~input in
      let r2 = Interp.run o ~input in
      Alcotest.(check (array int)) (w.Spec.name ^ " outputs")
        r1.Interp.outputs r2.Interp.outputs;
      Alcotest.(check bool)
        (Printf.sprintf "%s executes fewer stmts (%d -> %d)" w.Spec.name
           r1.Interp.stmts_executed r2.Interp.stmts_executed)
        true
        (r2.Interp.stmts_executed <= r1.Interp.stmts_executed))
    Spec.all

let prop_optimization_preserves_semantics =
  QCheck.Test.make ~name:"optimised random programs agree with originals"
    ~count:40 QCheck.small_int
    (fun seed ->
      let rng = Wet_util.Prng.create (seed * 7 + 1) in
      let stmts =
        List.init 6 (fun i ->
            match Wet_util.Prng.int rng 6 with
            | 0 -> Printf.sprintf "x = x * %d + y;" (Wet_util.Prng.int rng 5)
            | 1 -> Printf.sprintf "y = y - x / 3;"
            | 2 -> Printf.sprintf "if (x > y) { x = x - %d; } else { y = y + 1; }" (1 + i)
            | 3 -> Printf.sprintf "var t%d = x + y; x = t%d * 2;" i i
            | 4 -> Printf.sprintf "while (x > %d) { x = x - 7; }" (10 + (i * 3))
            | _ -> Printf.sprintf "g[%d] = x; y = g[%d] + y;" (i mod 4) ((i + 1) mod 4)
            )
      in
      let src =
        Printf.sprintf
          "global g[4]; fn main() { var x = %d; var y = %d; %s print(x); print(y); }"
          (Wet_util.Prng.int rng 20)
          (Wet_util.Prng.int rng 20)
          (String.concat " " stmts)
      in
      let p = Frontend.compile_exn src in
      let o = Driver.optimize p in
      Interp.outputs_only p ~input:[||] = Interp.outputs_only o ~input:[||])

let () =
  Alcotest.run "opt"
    [
      ( "passes",
        [
          Alcotest.test_case "constant folding" `Quick test_folds_constants;
          Alcotest.test_case "dead code" `Quick test_dce_removes_unused;
          Alcotest.test_case "branch folding + cfg" `Quick test_branch_folding_prunes_cfg;
          Alcotest.test_case "local cse" `Quick test_cse;
          Alcotest.test_case "traps preserved" `Quick test_traps_preserved;
          Alcotest.test_case "level 0" `Quick test_level_zero_identity;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "workloads preserved" `Quick test_workloads_preserved;
          QCheck_alcotest.to_alcotest prop_optimization_preserves_semantics;
        ] );
    ]
