(* Semantics of the wet_pulse layer and the domain-local metrics rework:
   the QCheck law that any partition of a recorded workload across local
   registries merges back to exactly the single-registry result, gauge
   last-write resolution, merge kind mismatches, ring wraparound and
   drop accounting (including under concurrent pushes from two
   domains), the sink/watch taps, and reporter heartbeat output. *)

module Obs = Wet_obs.Metrics
module Sink = Wet_obs.Sink
module Span = Wet_obs.Span
module Ring = Wet_pulse.Ring
module Reporter = Wet_pulse.Reporter
module Watch = Wet_watch.Watch
module F = Wet_watch.Filter
module E = Wet_watch.Event
module Json = Wet_insight.Json
module Wl = Wet_workloads.Spec

let with_sink f =
  Sink.enable ();
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Sink.disable ()) f

(* ------------------------------------------------------------------ *)
(* Merge semantics                                                     *)
(* ------------------------------------------------------------------ *)

(* One recorded operation: (kind, instrument, value). The name embeds
   the kind, so a generated workload can never trip the kind-mismatch
   error — that path has its own test below. *)
let apply reg (kind, name_i, v) =
  match kind mod 3 with
  | 0 -> Obs.add (Obs.Local.counter reg (Printf.sprintf "c%d" name_i)) v
  | 1 -> Obs.set (Obs.Local.gauge reg (Printf.sprintf "g%d" name_i)) v
  | _ ->
    Obs.observe (Obs.Local.histogram reg (Printf.sprintf "h%d" name_i)) v

(* Replaying a workload into one registry must equal replaying it
   partitioned across [k] worker registries (global order preserved —
   each op is recorded by the worker it is assigned to) and merging
   them back, in any merge order. *)
let prop_merge_equivalence =
  QCheck.Test.make ~name:"partitioned locals merge to single-registry result"
    ~count:300
    QCheck.(
      pair (int_range 1 4)
        (small_list
           (quad (int_bound 2) (int_bound 2) (int_range (-50) 2000)
              small_nat)))
    (fun (k, ops) ->
      with_sink (fun () ->
          let single = Obs.Local.create () in
          List.iter (fun (kind, n, v, _) -> apply single (kind, n, v)) ops;
          let locals = Array.init k (fun _ -> Obs.Local.create ()) in
          List.iter
            (fun (kind, n, v, part) ->
              apply locals.(part mod k) (kind, n, v))
            ops;
          let want = Obs.Local.snapshot single in
          let forward = Obs.Local.create () in
          Array.iter (fun l -> Obs.merge ~into:forward l) locals;
          let backward = Obs.Local.create () in
          for i = k - 1 downto 0 do
            Obs.merge ~into:backward locals.(i)
          done;
          Obs.Local.snapshot forward = want
          && Obs.Local.snapshot backward = want))

let test_gauge_last_write () =
  with_sink (fun () ->
      let a = Obs.Local.create () and b = Obs.Local.create () in
      Obs.set (Obs.Local.gauge a "g") 5;
      Obs.set (Obs.Local.gauge b "g") 7;
      (* b's write happened later, so it wins in either merge order *)
      List.iter
        (fun order ->
          let m = Obs.Local.create () in
          List.iter (fun r -> Obs.merge ~into:m r) order;
          match Obs.Local.snapshot m with
          | [ ("g", Obs.Gauge v) ] ->
            Alcotest.(check int) "last write wins" 7 v
          | _ -> Alcotest.fail "unexpected snapshot")
        [ [ a; b ]; [ b; a ] ])

let test_merge_kind_mismatch () =
  let a = Obs.Local.create () and b = Obs.Local.create () in
  ignore (Obs.Local.counter a "x");
  ignore (Obs.Local.gauge b "x");
  match Obs.merge ~into:a b with
  | () -> Alcotest.fail "kind mismatch not rejected"
  | exception Wet_error.Error e ->
    Alcotest.(check bool) "Obs stage" true (e.Wet_error.stage = Wet_error.Obs)

let test_merge_into_process_view () =
  with_sink (fun () ->
      let c = Obs.counter "pulse.t.merged" in
      Obs.add c 2;
      let l = Obs.Local.create () in
      Obs.add (Obs.Local.counter l "pulse.t.merged") 3;
      Obs.observe (Obs.Local.histogram l "pulse.t.merged_h") 9;
      Obs.merge l;
      Alcotest.(check int) "counter summed into the facade cell" 5
        (Obs.value c);
      match List.assoc "pulse.t.merged_h" (Obs.snapshot ()) with
      | Obs.Histogram s ->
        Alcotest.(check int) "histogram landed in the process view" 1
          s.Obs.h_count
      | _ -> Alcotest.fail "merged histogram missing")

(* Workers on real domains, each with a private registry — no shared
   instrument cells — merged after join. *)
let test_domain_workers_merge () =
  with_sink (fun () ->
      let worker n () =
        let reg = Obs.Local.create () in
        let c = Obs.Local.counter reg "d.count" in
        let h = Obs.Local.histogram reg "d.hist" in
        for i = 1 to n do
          Obs.add c 1;
          Obs.observe h i
        done;
        reg
      in
      let d1 = Domain.spawn (worker 1000) in
      let d2 = Domain.spawn (worker 500) in
      let r1 = Domain.join d1 and r2 = Domain.join d2 in
      let into = Obs.Local.create () in
      Obs.merge ~into r1;
      Obs.merge ~into r2;
      (match List.assoc "d.count" (Obs.Local.snapshot into) with
       | Obs.Counter v -> Alcotest.(check int) "counters sum" 1500 v
       | _ -> Alcotest.fail "d.count missing");
      match List.assoc "d.hist" (Obs.Local.snapshot into) with
      | Obs.Histogram s ->
        Alcotest.(check int) "all observations merged" 1500 s.Obs.h_count;
        Alcotest.(check int) "max survives" 1000 s.Obs.h_max
      | _ -> Alcotest.fail "d.hist missing")

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let mk_ev i =
  Ring.Span
    {
      Sink.ev_name = Printf.sprintf "e%d" i;
      ev_ts_ns = i;
      ev_dur_ns = None;
      ev_depth = 0;
      ev_attrs = [];
    }

let entry_name = function
  | Ring.Span e -> e.Sink.ev_name
  | Ring.Watch (e, _) -> E.kind_name e.E.e_kind

let test_ring_wraparound () =
  let r = Ring.create ~capacity:8 () in
  for i = 0 to 19 do
    Ring.push r (mk_ev i)
  done;
  let entries, s = Ring.snapshot r in
  Alcotest.(check int) "total counts every push" 20 s.Ring.total;
  Alcotest.(check int) "dropped = total - capacity" 12 s.Ring.dropped;
  Alcotest.(check int) "retained at capacity" 8 s.Ring.retained;
  Alcotest.(check (list string)) "last 8, oldest to newest"
    (List.init 8 (fun i -> Printf.sprintf "e%d" (12 + i)))
    (List.map entry_name entries)

let test_ring_no_drops_below_capacity () =
  let r = Ring.create ~capacity:8 () in
  for i = 0 to 4 do
    Ring.push r (mk_ev i)
  done;
  let entries, s = Ring.snapshot r in
  Alcotest.(check int) "nothing dropped" 0 s.Ring.dropped;
  Alcotest.(check int) "all retained" 5 s.Ring.retained;
  Alcotest.(check int) "in order" 5 (List.length entries)

let test_ring_bad_capacity () =
  match Ring.create ~capacity:0 () with
  | _ -> Alcotest.fail "zero capacity accepted"
  | exception Wet_error.Error e ->
    Alcotest.(check bool) "Obs stage" true (e.Wet_error.stage = Wet_error.Obs)

let test_ring_concurrent_push () =
  let cap = 16 in
  let r = Ring.create ~capacity:cap () in
  let n = 5000 in
  let pusher () =
    for i = 0 to n - 1 do
      Ring.push r (mk_ev i)
    done
  in
  let d1 = Domain.spawn pusher and d2 = Domain.spawn pusher in
  Domain.join d1;
  Domain.join d2;
  let s = Ring.stats r in
  Alcotest.(check int) "no push lost" (2 * n) s.Ring.total;
  Alcotest.(check int) "drops account for the rest" ((2 * n) - cap)
    s.Ring.dropped;
  Alcotest.(check int) "window bounded" cap s.Ring.retained

let test_sink_tap_feeds_ring () =
  with_sink (fun () ->
      let r = Ring.create () in
      Ring.install r;
      Fun.protect ~finally:Ring.uninstall (fun () ->
          Span.with_ "t.span" (fun () -> Span.instant "t.instant");
          let entries, s = Ring.snapshot r in
          Alcotest.(check int) "instant + span close" 2 s.Ring.total;
          Alcotest.(check (list string)) "emission order"
            [ "t.instant"; "t.span" ]
            (List.map entry_name entries));
      (* taps removed: later spans stay out of the ring *)
      Span.instant "t.after";
      Alcotest.(check int) "uninstalled tap sees nothing" 2
        (Ring.stats r).Ring.total)

let test_watch_tap_feeds_ring () =
  let prog = Wl.compile (Wl.find "parser") in
  with_sink (fun () ->
      let r = Ring.create () in
      Ring.install r;
      Fun.protect ~finally:Ring.uninstall (fun () ->
          let p = Watch.probe ~name:"t.pulse" prog F.True Watch.Capture in
          Watch.with_armed [ p ]
            (fun () ->
              Watch.emit (E.kind_index E.Block_entry) 0 1 2 0 (-1) 7);
          let entries, s = Ring.snapshot r in
          Alcotest.(check int) "one watch entry" 1 s.Ring.total;
          match entries with
          | [ Ring.Watch (e, wall) ] ->
            Alcotest.(check bool) "decoded kind" true
              (e.E.e_kind = E.Block_entry);
            Alcotest.(check int) "timestamp carried" 7 e.E.e_ts;
            Alcotest.(check bool) "wall stamp present" true (wall > 0)
          | _ -> Alcotest.fail "expected one Watch entry"))

(* ------------------------------------------------------------------ *)
(* Reporter                                                            *)
(* ------------------------------------------------------------------ *)

let jint k j =
  match Json.member k j with
  | Some v -> Option.value (Json.to_int v) ~default:0
  | None -> 0

let test_reporter_jsonl_heartbeats () =
  with_sink (fun () ->
      let path = Filename.temp_file "wet_pulse" ".jsonl" in
      Fun.protect ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let oc = open_out path in
          let stmts = Obs.counter "interp.stmts" in
          let ring = Ring.create () in
          Ring.push ring (mk_ev 0);
          let r = Reporter.create ~ring ~interval_ms:0 (Reporter.Jsonl oc) in
          Reporter.install r;
          Fun.protect ~finally:Reporter.uninstall (fun () ->
              Obs.add stmts 100;
              Sink.tick ();
              Obs.add stmts 150;
              Sink.tick ();
              Reporter.finish r);
          close_out oc;
          let ic = open_in path in
          let raw = really_input_string ic (in_channel_length ic) in
          close_in ic;
          let lines =
            String.split_on_char '\n' raw
            |> List.filter (fun l -> String.trim l <> "")
            |> List.map (fun l ->
                 match Json.parse l with
                 | Ok j -> j
                 | Error m -> Alcotest.fail ("bad heartbeat line: " ^ m))
          in
          match lines with
          | meta :: beats ->
            Alcotest.(check (option string)) "schema header"
              (Some Wet_obs.Export.schema)
              (Option.bind (Json.member "schema" meta) Json.to_str);
            Alcotest.(check int) "two ticks + finish" 3 (List.length beats);
            let stmts_seq = List.map (jint "stmts") beats in
            Alcotest.(check (list int)) "statement counts are monotone"
              (List.sort compare stmts_seq) stmts_seq;
            Alcotest.(check int) "final count reported" 250
              (List.nth stmts_seq 2);
            let seqs = List.map (jint "seq") beats in
            Alcotest.(check (list int)) "seq increments" [ 1; 2; 3 ] seqs;
            List.iter
              (fun b ->
                Alcotest.(check int) "ring stats flow through" 1
                  (jint "ring_pushed" b))
              beats
          | [] -> Alcotest.fail "no heartbeat output"))

let test_reporter_rate_limit () =
  with_sink (fun () ->
      let path = Filename.temp_file "wet_pulse" ".jsonl" in
      Fun.protect ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let oc = open_out path in
          (* an hour-long interval: only [finish]'s forced emission and
             the first due tick can appear *)
          let r =
            Reporter.create ~interval_ms:3_600_000 (Reporter.Jsonl oc)
          in
          Reporter.install r;
          Fun.protect ~finally:Reporter.uninstall (fun () ->
              for _ = 1 to 100 do
                Sink.tick ()
              done;
              Reporter.finish r);
          close_out oc;
          let ic = open_in path in
          let raw = really_input_string ic (in_channel_length ic) in
          close_in ic;
          let beats =
            String.split_on_char '\n' raw
            |> List.filter (fun l ->
                 String.length l > 0
                 && String.length l >= 19
                 && String.sub l 0 19 = "{\"type\":\"heartbeat\"")
          in
          Alcotest.(check bool) "ticks rate-limited" true
            (List.length beats <= 2)))

let () =
  Alcotest.run "pulse"
    [
      ( "merge",
        [
          QCheck_alcotest.to_alcotest prop_merge_equivalence;
          Alcotest.test_case "gauge last-write-wins" `Quick
            test_gauge_last_write;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_merge_kind_mismatch;
          Alcotest.test_case "merge into process view" `Quick
            test_merge_into_process_view;
          Alcotest.test_case "domain workers merge" `Quick
            test_domain_workers_merge;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wraparound and drop counters" `Quick
            test_ring_wraparound;
          Alcotest.test_case "no drops below capacity" `Quick
            test_ring_no_drops_below_capacity;
          Alcotest.test_case "bad capacity rejected" `Quick
            test_ring_bad_capacity;
          Alcotest.test_case "concurrent pushes accounted" `Quick
            test_ring_concurrent_push;
          Alcotest.test_case "span sink tap" `Quick test_sink_tap_feeds_ring;
          Alcotest.test_case "watch tap" `Quick test_watch_tap_feeds_ring;
        ] );
      ( "reporter",
        [
          Alcotest.test_case "jsonl heartbeats" `Quick
            test_reporter_jsonl_heartbeats;
          Alcotest.test_case "rate limiting" `Quick test_reporter_rate_limit;
        ] );
    ]
