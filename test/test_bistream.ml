(* The deprecated module-level cursor API stays covered here until it
   is removed; the Session equivalents are covered by test_session. *)
[@@@alert "-deprecated"]

module Bidir = Wet_bistream.Bidir
module Stream = Wet_bistream.Stream

let all_variants =
  List.concat_map (fun m -> [ (m, 1); (m, 2); (m, 4) ]) Bidir.all_meths

let variant_name (m, c) = Printf.sprintf "%s/%d" (Bidir.meth_name m) c

(* Reference streams covering the behaviours each method targets. *)
let fixtures rng =
  [
    ("constant", Array.make 2000 42);
    ("stride", Array.init 2000 (fun i -> (5 * i) - 300));
    ("periodic", Array.init 2000 (fun i -> [| 3; 1; 4; 1; 5; 9 |].(i mod 6)));
    ("random", Array.init 2000 (fun _ -> Wet_util.Prng.int rng 1_000_000 - 500_000));
    ("mixed", Array.init 2000 (fun i -> if i mod 13 < 10 then i / 13 else Wet_util.Prng.int rng 50));
    ("tiny", [| 7; -3; 7 |]);
    ("single", [| 123 |]);
    ("empty", [||]);
  ]

let test_round_trip () =
  let rng = Wet_util.Prng.create 99 in
  List.iter
    (fun (name, arr) ->
      List.iter
        (fun (m, c) ->
          let b = Bidir.compress m ~ctx:c arr in
          Alcotest.(check (array int))
            (Printf.sprintf "%s %s forward" name (variant_name (m, c)))
            arr (Bidir.to_array b);
          (* backward read from the right end *)
          Bidir.seek b (Array.length arr);
          let back = Array.init (Array.length arr) (fun _ -> Bidir.step_backward b) in
          let fwd = Array.init (Array.length arr) (fun i -> back.(Array.length arr - 1 - i)) in
          Alcotest.(check (array int))
            (Printf.sprintf "%s %s backward" name (variant_name (m, c)))
            arr fwd)
        all_variants)
    (fixtures rng)

let test_peek_is_pure () =
  let arr = Array.init 500 (fun i -> i * i mod 97) in
  List.iter
    (fun (m, c) ->
      let b = Bidir.compress m ~ctx:c arr in
      Bidir.seek b 250;
      let p1 = Bidir.peek_forward b in
      let p2 = Bidir.peek_forward b in
      Alcotest.(check int) "peek stable" p1 p2;
      Alcotest.(check int) "peek = value" arr.(250) p1;
      Alcotest.(check int) "peek backward" arr.(249) (Bidir.peek_backward b);
      Alcotest.(check int) "cursor unchanged" 250 (Bidir.cursor b))
    all_variants

let prop_random_walk =
  QCheck.Test.make ~name:"random cursor walks read the right values" ~count:40
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      n = 0
      ||
      let rng = Wet_util.Prng.create seed in
      List.for_all
        (fun (m, c) ->
          let b = Bidir.compress m ~ctx:c arr in
          let ok = ref true in
          for _ = 1 to 60 do
            let k = Wet_util.Prng.int rng n in
            if Bidir.read_at b k <> arr.(k) then ok := false
          done;
          !ok)
        [ (Bidir.Fcm, 2); (Bidir.Dfcm, 2); (Bidir.Last_n, 4); (Bidir.Last_stride, 1) ])

let prop_states_position_determined =
  (* Bidirectionality: arriving at a cursor position by any route leaves
     identical observable state (same reads thereafter). *)
  QCheck.Test.make ~name:"state depends only on cursor position" ~count:25
    QCheck.(list small_int)
    (fun xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      n < 4
      ||
      List.for_all
        (fun (m, c) ->
          let b = Bidir.compress m ~ctx:c arr in
          Bidir.seek b (n / 2);
          let direct = Bidir.peek_forward b in
          (* wander: to end, to start, back to the middle *)
          Bidir.seek b n;
          Bidir.seek b 0;
          Bidir.seek b (n / 2);
          let wandered = Bidir.peek_forward b in
          direct = wandered)
        all_variants)

let test_compression_effectiveness () =
  let check name arr expected_min_ratio meths =
    List.iter
      (fun (m, c) ->
        let b = Bidir.compress m ~ctx:c arr in
        let ratio =
          float_of_int (32 * Array.length arr)
          /. float_of_int (Bidir.compressed_bits b)
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s %s ratio %.2f >= %.2f" name (variant_name (m, c))
             ratio expected_min_ratio)
          true
          (ratio >= expected_min_ratio))
      meths
  in
  (* a constant stream is near-free for the last-n family *)
  check "constant" (Array.make 10000 5) 20. [ (Bidir.Last_n, 1) ];
  (* arithmetic progressions are near-free for stride methods *)
  check "stride" (Array.init 10000 (fun i -> 7 * i)) 12.
    [ (Bidir.Last_stride, 2) ];
  (* the FCM family pays for its lookup tables, capping its ratio *)
  check "stride" (Array.init 10000 (fun i -> 7 * i)) 6. [ (Bidir.Dfcm, 2) ];
  (* periodic patterns suit FCM once the context disambiguates the
     period (context 2 is genuinely ambiguous here: (8,2) is followed by
     both 8 and 7) *)
  check "periodic"
    (Array.init 10000 (fun i -> [| 2; 7; 1; 8; 2; 8 |].(i mod 6)))
    6. [ (Bidir.Fcm, 4) ];
  check "periodic-ambiguous"
    (Array.init 10000 (fun i -> [| 2; 7; 1; 8; 2; 8 |].(i mod 6)))
    1.5 [ (Bidir.Fcm, 2) ]

let test_selection () =
  (* the facade picks something at least as small as raw *)
  let rng = Wet_util.Prng.create 5 in
  List.iter
    (fun (name, arr) ->
      let s = Stream.compress arr in
      Alcotest.(check (array int)) (name ^ " roundtrip") arr (Stream.to_array s);
      Alcotest.(check bool) (name ^ " not worse than raw") true
        (Stream.bits s <= (32 * Array.length arr) + 1))
    (fixtures rng)

let test_selection_picks_sensibly () =
  let s = Stream.compress (Array.make 5000 9) in
  Alcotest.(check bool) "constant stream is packed" true
    (Stream.method_name s <> "raw");
  let rng = Wet_util.Prng.create 17 in
  let s = Stream.compress (Array.init 5000 (fun _ -> Wet_util.Prng.next rng)) in
  Alcotest.(check string) "random stream stays raw" "raw" (Stream.method_name s)

let test_find_ascending () =
  let arr = Array.init 1000 (fun i -> 3 * i) in
  List.iter
    (fun spec ->
      let s = Stream.compress_with spec arr in
      Alcotest.(check (option int)) "present" (Some 100) (Stream.find_ascending s 300);
      Alcotest.(check (option int)) "absent" None (Stream.find_ascending s 301);
      Alcotest.(check (option int)) "first" (Some 0) (Stream.find_ascending s 0);
      Alcotest.(check (option int)) "last" (Some 999) (Stream.find_ascending s 2997);
      Alcotest.(check (option int)) "beyond" None (Stream.find_ascending s 5000))
    [ `Raw; `Bidir (Bidir.Dfcm, 2); `Bidir (Bidir.Last_stride, 1) ]

let test_lower_bound () =
  let arr = Array.init 100 (fun i -> 2 * i) in
  List.iter
    (fun spec ->
      let s = Stream.compress_with spec arr in
      Alcotest.(check int) "exact" 5 (Stream.lower_bound s 10);
      Alcotest.(check int) "between" 6 (Stream.lower_bound s 11);
      Alcotest.(check int) "before" 0 (Stream.lower_bound s (-5));
      Alcotest.(check int) "after" 100 (Stream.lower_bound s 1000))
    [ `Raw; `Bidir (Bidir.Dfcm, 2); `Bidir (Bidir.Last_n, 1) ]

let test_cursor_bounds () =
  let b = Bidir.compress Bidir.Fcm ~ctx:2 [| 1; 2; 3 |] in
  Alcotest.check_raises "backward at start"
    (Invalid_argument "Bidir.step_backward: at left end") (fun () ->
      ignore (Bidir.step_backward b));
  Bidir.seek b 3;
  Alcotest.check_raises "forward at end"
    (Invalid_argument "Bidir.step_forward: at right end") (fun () ->
      ignore (Bidir.step_forward b));
  Alcotest.check_raises "bad ctx" (Invalid_argument "Bidir.compress: ctx must be in [1,16]")
    (fun () -> ignore (Bidir.compress Bidir.Fcm ~ctx:0 [| 1 |]))

let () =
  Alcotest.run "bistream"
    [
      ( "bidir",
        [
          Alcotest.test_case "round trips" `Quick test_round_trip;
          Alcotest.test_case "peek purity" `Quick test_peek_is_pure;
          Alcotest.test_case "cursor bounds" `Quick test_cursor_bounds;
          QCheck_alcotest.to_alcotest prop_random_walk;
          QCheck_alcotest.to_alcotest prop_states_position_determined;
        ] );
      ( "compression",
        [
          Alcotest.test_case "effectiveness" `Quick test_compression_effectiveness;
        ] );
      ( "selection",
        [
          Alcotest.test_case "never worse than raw" `Quick test_selection;
          Alcotest.test_case "sensible picks" `Quick test_selection_picks_sensibly;
          Alcotest.test_case "find_ascending" `Quick test_find_ascending;
          Alcotest.test_case "lower_bound" `Quick test_lower_bound;
        ] );
    ]
