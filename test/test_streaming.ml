(* Streaming-vs-batch equivalence: the sink must produce byte-identical
   saved containers to the materialize-then-build path, at every shard
   size, on both tiers — the whole point of the streaming redesign is
   that flush points are unobservable in the output. *)

module W = Wet_core.Wet
module Builder = Wet_core.Builder
module Store = Wet_core.Store
module Interp = Wet_interp.Interp
module T = Wet_interp.Trace
module Spec = Wet_workloads.Spec

let programs =
  [
    (* recursive calls exercise the pending-call gating and the
       deferred return-value links *)
    ( "fib-array",
      {|
global arr[10];
fn fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main() {
  var i = 0;
  while (i < 10) { arr[i] = fib(i); i = i + 1; }
  var j = 0;
  while (j < 10) { print(arr[j]); j = j + 1; }
}
|},
      [||] );
    ( "input-driven",
      {|
global buf[16];
fn weigh(x, w) { return x * w + 1; }
fn main() {
  var i = 0;
  while (i < 16) {
    buf[i] = weigh(input(), i % 4);
    i = i + 1;
  }
  var j = 0;
  while (j < 16) { print(buf[j]); j = j + 1; }
}
|},
      Array.init 16 (fun i -> (i * 13) mod 31) );
  ]

let workloads =
  List.map
    (fun (name, src, input) ->
      (name, Wet_minic.Frontend.compile_exn src, input))
    programs
  @ (* a bundled benchmark for breadth: deep recursion at small scale *)
  (let spec = Spec.find "130.li" in
   [ ("130.li", Spec.compile spec, Spec.input spec ~scale:1) ])

let file_bytes path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Save both, compare bytes, clean up. *)
let saved_bytes wet =
  let path = Filename.temp_file "wet_streaming" ".wet" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.save wet path;
      file_bytes path)

let check_identical label batch streamed =
  let b = saved_bytes batch and s = saved_bytes streamed in
  Alcotest.(check bool) (label ^ ": containers byte-identical") true (b = s)

let batch_build prog input =
  let res = Interp.run prog ~input in
  (Builder.build res.Interp.trace, res.Interp.trace)

let test_equivalence () =
  List.iter
    (fun (name, prog, input) ->
      let w1, _ = batch_build prog input in
      let w2 = Builder.pack w1 in
      List.iter
        (fun shard_events ->
          let label = Printf.sprintf "%s shard=%d" name shard_events in
          let s1 = Builder.run_streaming ~shard_events ~program:prog ~input () in
          check_identical (label ^ " tier1") w1 s1;
          check_identical (label ^ " tier2") w2 (Builder.pack s1))
        [ 1; 7; 65536 ])
    workloads

(* Regression: a call whose result is discarded lowers to a dst-less
   [Instr.Call], which emits no [es_call], so no pending-call gate holds
   its position across the flush that [finish_path] can trigger at the
   call site — yet the callee's activation needs that position live as
   its calling context. A dense sweep of shard sizes lands boundaries on
   such calls; before the [pending_ctx] fix the build died with
   "live position already evicted". *)
let test_discarded_call_at_boundary () =
  let src =
    {|
global acc[4];
fn bump(i) { acc[i % 4] = acc[i % 4] + i; return i; }
fn main() {
  var i = 0;
  while (i < 40) { bump(i); i = i + 1; }
  var j = 0;
  while (j < 4) { print(acc[j]); j = j + 1; }
}
|}
  in
  let prog = Wet_minic.Frontend.compile_exn src in
  let w1, _ = batch_build prog [||] in
  for shard_events = 1 to 64 do
    let s1 = Builder.run_streaming ~shard_events ~program:prog ~input:[||] () in
    check_identical
      (Printf.sprintf "discarded-call shard=%d" shard_events)
      w1 s1
  done;
  (* the original field failure: 197.parser at scale 5, shard 100 *)
  let spec = Spec.find "197.parser" in
  let prog = Spec.compile spec and input = Spec.input spec ~scale:5 in
  let w1, _ = batch_build prog input in
  List.iter
    (fun shard_events ->
      let s1 = Builder.run_streaming ~shard_events ~program:prog ~input () in
      check_identical
        (Printf.sprintf "197.parser shard=%d" shard_events)
        w1 s1)
    [ 100; 101; 137 ]

(* Shard size far larger than the whole event stream: a single flush at
   finish, still identical. *)
let test_shard_larger_than_trace () =
  List.iter
    (fun (name, prog, input) ->
      let w1, _ = batch_build prog input in
      let s1 =
        Builder.run_streaming ~shard_events:max_int ~program:prog ~input ()
      in
      check_identical (name ^ " oversized shard") w1 s1)
    workloads

(* A shard boundary landing exactly on the final event: the finishing
   drain sees an empty buffer. Driven through the explicit sink API so
   the flush point is under test control. *)
let test_empty_last_shard () =
  let name, prog, input = List.hd workloads in
  let w1, trace = batch_build prog input in
  let total_events =
    trace.T.nstmts + Array.length trace.T.deps
    + Array.length trace.T.cd_producer
    + Array.length trace.T.paths
  in
  let analysis = trace.T.analysis in
  let sink = Builder.Sink.create ~shard_events:total_events analysis in
  let _outputs, _stmts =
    Interp.run_with_sink ~analysis ~sink:(Builder.Sink.events sink) prog ~input
  in
  let s1 = Builder.Sink.finish sink in
  check_identical (name ^ " empty last shard") w1 s1

(* Explicit flush_shard calls sprinkled between events must also be
   unobservable: flush after every path execution. *)
let test_explicit_flush () =
  let name, prog, input = List.nth workloads 1 in
  let w1, _ = batch_build prog input in
  let sink = Builder.Sink.create ~shard_events:max_int (Wet_cfg.Program_analysis.of_program prog) in
  let es = Builder.Sink.events sink in
  let es' =
    {
      es with
      Interp.es_path =
        (fun key ->
          es.Interp.es_path key;
          Builder.Sink.flush_shard sink);
    }
  in
  let _ = Interp.run_with_sink ~sink:es' prog ~input in
  let s1 = Builder.Sink.finish sink in
  check_identical (name ^ " explicit flush") w1 s1;
  Alcotest.(check bool) "many shards" true (Builder.Sink.shard_count sink > 2)

let test_shard_count_and_peak () =
  let _, prog, input = List.hd workloads in
  let analysis = Wet_cfg.Program_analysis.of_program prog in
  let sink =
    Builder.Sink.create ~shard_events:64 ~track_peak:true analysis
  in
  let _ =
    Interp.run_with_sink ~analysis ~sink:(Builder.Sink.events sink) prog ~input
  in
  let _wet = Builder.Sink.finish sink in
  Alcotest.(check bool) "shards counted" true
    (Builder.Sink.shard_count sink >= 2);
  Alcotest.(check bool) "peak sampled" true
    (Builder.Sink.peak_live_words sink > 0);
  (* untracked sink reports 0 *)
  let sink2 = Builder.Sink.create analysis in
  let _ =
    Interp.run_with_sink ~analysis ~sink:(Builder.Sink.events sink2) prog
      ~input
  in
  let _ = Builder.Sink.finish sink2 in
  Alcotest.(check int) "peak off by default" 0
    (Builder.Sink.peak_live_words sink2)

let test_feed_after_finish () =
  let _, prog, input = List.hd workloads in
  let analysis = Wet_cfg.Program_analysis.of_program prog in
  let sink = Builder.Sink.create analysis in
  let _ =
    Interp.run_with_sink ~analysis ~sink:(Builder.Sink.events sink) prog ~input
  in
  let _ = Builder.Sink.finish sink in
  Alcotest.check_raises "feed after finish"
    (Wet_error.Error { Wet_error.stage = Wet_error.Build; msg = "feed after finish" })
    (fun () -> Builder.Sink.feed_value sink 0);
  Alcotest.check_raises "double finish"
    (Wet_error.Error
       { Wet_error.stage = Wet_error.Build; msg = "finish after finish" })
    (fun () -> ignore (Builder.Sink.finish sink))

let () =
  Alcotest.run "streaming"
    [
      ( "equivalence",
        [
          Alcotest.test_case "byte-identical across shard sizes" `Quick
            test_equivalence;
          Alcotest.test_case "discarded call at shard boundary" `Quick
            test_discarded_call_at_boundary;
          Alcotest.test_case "shard larger than trace" `Quick
            test_shard_larger_than_trace;
          Alcotest.test_case "empty last shard" `Quick test_empty_last_shard;
          Alcotest.test_case "explicit flush per path" `Quick
            test_explicit_flush;
        ] );
      ( "sink",
        [
          Alcotest.test_case "shard count and peak tracking" `Quick
            test_shard_count_and_peak;
          Alcotest.test_case "misuse raises Wet_error" `Quick
            test_feed_after_finish;
        ] );
    ]
