(* wet_serve: wire-protocol totality (QCheck round trips plus hostile
   lines), the resident-container LRU, top's histogram quantiles, and
   end-to-end metric consistency against a live daemon answering
   concurrent clients. *)

module P = Wet_serve.Protocol
module Cache = Wet_serve.Cache
module Server = Wet_serve.Server
module Client = Wet_serve.Client
module Render = Wet_serve.Render
module Top = Wet_serve.Top
module Builder = Wet_core.Builder
module Store = Wet_core.Store
module Interp = Wet_interp.Interp
module Qlog = Wet_qprof.Qlog
module Json = Wet_insight.Json

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let program_src =
  {|
global arr[8];
fn fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main() {
  var i = 0;
  while (i < 8) { arr[i] = fib(i); i = i + 1; }
  var j = 0;
  while (j < 8) { print(arr[j]); j = j + 1; }
}
|}

let wets =
  lazy
    (let prog = Wet_minic.Frontend.compile_exn program_src in
     let res = Interp.run prog ~input:[||] in
     let w1 = Builder.build res.Interp.trace in
     (w1, Builder.pack w1))

let with_temp_dir f =
  let dir = Filename.temp_file "wet_serve_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Protocol round trips                                                *)
(* ------------------------------------------------------------------ *)

let gen_small_string = QCheck.Gen.(string_size ~gen:printable (int_range 0 12))

let gen_request =
  QCheck.Gen.(
    int_range 0 100_000 >>= fun id ->
    oneofl P.all_verbs >>= fun verb ->
    opt gen_small_string >>= fun wet ->
    list_size (int_range 0 4)
      (pair (string_size ~gen:printable (int_range 1 8)) gen_small_string)
    >>= fun params ->
    bool >>= fun analyze -> return (P.request ?wet ~params ~analyze ~id verb))

let request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request encode/decode round trip"
    (QCheck.make gen_request ~print:P.encode_request)
    (fun r ->
      match P.decode_request (P.encode_request r) with
      | Ok r' -> r' = r
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m)

let gen_response =
  QCheck.Gen.(
    int_range 0 100_000 >>= fun id ->
    bool >>= fun ok ->
    opt gen_small_string >>= fun err ->
    list_size (int_range 0 6) gen_small_string >>= fun lines ->
    return
      {
        P.rs_id = id;
        rs_ok = ok;
        rs_error = err;
        rs_lines = lines;
        rs_data = Json.Obj [];
      })

let response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"response encode/decode round trip"
    (QCheck.make gen_response ~print:P.encode_response)
    (fun r ->
      match P.decode_response (P.encode_response r) with
      | Ok r' -> r' = r
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m)

(* Lines also survive the characters the wire cares about: newlines,
   quotes and backslashes must be escaped into the one-line frame. *)
let test_encode_escapes () =
  let r =
    P.request ~wet:"a\nb\"c\\d" ~params:[ ("k\n", "v\t") ] ~id:7 P.Trace
  in
  let line = P.encode_request r in
  Alcotest.(check bool) "one line" false (String.contains line '\n');
  match P.decode_request line with
  | Ok r' -> Alcotest.(check bool) "escaped round trip" true (r = r')
  | Error m -> Alcotest.failf "decode failed: %s" m

(* ------------------------------------------------------------------ *)
(* Hostile input: decoding is total                                    *)
(* ------------------------------------------------------------------ *)

let check_error what line expect =
  match P.decode_request line with
  | Ok _ -> Alcotest.failf "%s: decoded a bad line" what
  | Error m ->
    let contains s sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      n = 0 || go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s mentions %S (got %S)" what expect m)
      true (contains m expect)

let test_hostile_lines () =
  check_error "unknown verb" {|{"id":1,"verb":"frobnicate"}|} "frobnicate";
  check_error "truncated line" {|{"id":3,"verb":"op|} "truncated or malformed";
  check_error "empty line" "" "truncated or malformed";
  check_error "non-object" "42" "must be a JSON object";
  check_error "missing verb" {|{"id":1}|} "verb";
  check_error "missing id" {|{"verb":"open"}|} "id";
  check_error "non-string param"
    {|{"id":1,"verb":"trace","params":{"limit":5}}|}
    "must be a string";
  check_error "non-bool analyze"
    {|{"id":1,"verb":"trace","analyze":"yes"}|}
    "must be a boolean";
  (match P.decode_response {|{"ok":true|} with
   | Ok _ -> Alcotest.fail "decoded a truncated response"
   | Error _ -> ());
  let e = P.error_response ~id:4 "boom" in
  Alcotest.(check bool) "error response not ok" false e.P.rs_ok;
  Alcotest.(check (option string)) "error message" (Some "boom") e.P.rs_error

(* ------------------------------------------------------------------ *)
(* LRU cache                                                           *)
(* ------------------------------------------------------------------ *)

let test_cache_lru () =
  with_temp_dir @@ fun dir ->
  let w1, w2 = Lazy.force wets in
  let a = Filename.concat dir "a.wet" in
  let b = Filename.concat dir "b.wet" in
  let c = Filename.concat dir "c.wet" in
  Store.save w1 a;
  Store.save w2 b;
  Store.save w1 c;
  let cache = Cache.create ~capacity:2 () in
  let find p =
    match Cache.find cache p with
    | Ok e -> e
    | Error m -> Alcotest.failf "find %s: %s" p m
  in
  let resident () = List.map (fun e -> e.Cache.e_path) (Cache.resident cache) in
  Alcotest.(check (list string)) "sound container has no damage" []
    (find a).Cache.e_damage;
  ignore (find b);
  ignore (find a);
  Alcotest.(check (list string)) "MRU first after a hit" [ a; b ]
    (resident ());
  ignore (find c);
  Alcotest.(check (list string)) "LRU (b) evicted" [ c; a ] (resident ());
  ignore (find b);
  Alcotest.(check (list string)) "a evicted in turn" [ b; c ] (resident ());
  let hits, misses, evictions = Cache.stats cache in
  Alcotest.(check (triple int int int)) "hit/miss/eviction tallies"
    (1, 4, 2) (hits, misses, evictions);
  (* failed loads never enter the cache or change residency *)
  (match Cache.find cache (Filename.concat dir "missing.wet") with
   | Ok _ -> Alcotest.fail "loaded a missing container"
   | Error _ -> ());
  (match Cache.find cache "/etc/hostname" with
   | Ok _ -> Alcotest.fail "loaded a non-.wet path"
   | Error _ -> ());
  Alcotest.(check (list string)) "residency unchanged by failures"
    [ b; c ] (resident ());
  Alcotest.(check bool) "peek does not touch the LRU order" true
    (Cache.peek cache c <> None);
  Alcotest.(check (list string)) "peek left order alone" [ b; c ]
    (resident ())

(* ------------------------------------------------------------------ *)
(* Top quantiles                                                       *)
(* ------------------------------------------------------------------ *)

let test_quantiles () =
  Alcotest.(check int) "empty histogram" 0
    (Top.quantile_of_buckets ~q:0.5 []);
  let buckets = [ (0, 1, 0); (1, 2, 5); (2, 4, 5) ] in
  Alcotest.(check int) "p50 lands in the middle bucket" 2
    (Top.quantile_of_buckets ~q:0.5 buckets);
  Alcotest.(check int) "p95 lands in the last bucket" 4
    (Top.quantile_of_buckets ~q:0.95 buckets)

(* ------------------------------------------------------------------ *)
(* Live daemon: concurrent clients reconcile with the metrics verb     *)
(* ------------------------------------------------------------------ *)

let connect socket =
  let rec go tries =
    match Client.connect socket with
    | Ok c -> c
    | Error e ->
      if tries = 0 then Alcotest.failf "connect %s: %s" socket e
      else begin
        Thread.delay 0.02;
        go (tries - 1)
      end
  in
  go 250

let roundtrip client req =
  match Client.request client req with
  | Ok r when r.P.rs_ok -> r
  | Ok r ->
    Alcotest.failf "request %d failed: %s" req.P.rq_id
      (Option.value r.P.rs_error ~default:"unknown error")
  | Error e -> Alcotest.failf "request %d: %s" req.P.rq_id e

let counters_of_lines lines =
  List.filter_map
    (fun line ->
      match Json.parse line with
      | Error _ -> None
      | Ok o -> (
        match
          ( Option.bind (Json.member "type" o) Json.to_str,
            Option.bind (Json.member "name" o) Json.to_str,
            Option.bind (Json.member "value" o) Json.to_int )
        with
        | Some "counter", Some n, Some v -> Some (n, v)
        | _ -> None))
    lines

let test_daemon_concurrent () =
  with_temp_dir @@ fun dir ->
  let w1, _ = Lazy.force wets in
  let wet_path = Filename.concat dir "fib.wet" in
  Store.save w1 wet_path;
  let socket = Filename.concat dir "serve.sock" in
  let qlog = Filename.concat dir "access.qlog.jsonl" in
  let daemon =
    Thread.create Server.run
      {
        Server.socket;
        cache_capacity = 2;
        qlog = Some qlog;
        ring_capacity = 64;
        (* force the domain-per-connection path even on small machines
           so the parallel dispatch is covered, with one client left on
           the thread fallback *)
        domains = 3;
      }
  in
  let clients = 4 and per_client = 6 in
  let errors = Atomic.make 0 in
  let worker i () =
    try
      let c = connect socket in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          for j = 1 to per_client do
            ignore
              (roundtrip c
                 (P.request ~wet:wet_path ~id:((i * 100) + j) P.Open))
          done)
    with _ -> Atomic.incr errors
  in
  let ths = List.init clients (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join ths;
  Alcotest.(check int) "no client errors" 0 (Atomic.get errors);
  let c = connect socket in
  (* remote trace output is byte-identical to the local renderer on a
     fresh load of the same container *)
  let remote =
    (roundtrip c
       (P.request ~wet:wet_path
          ~params:[ ("kind", "cf"); ("limit", "8") ]
          ~id:1 P.Trace))
      .P.rs_lines
  in
  let local =
    Render.trace
      (Wet_core.Wet.open_session (Store.load wet_path))
      ~kind:Render.Cf ~limit:8
  in
  Alcotest.(check (list string)) "remote trace = local render" local remote;
  (* every per-connection request count survives into the merged
     metrics snapshot, even for already-closed connections *)
  let metrics = roundtrip c (P.request ~id:2 P.Metrics) in
  let counters = counters_of_lines metrics.P.rs_lines in
  let counter name = Option.value (List.assoc_opt name counters) ~default:0 in
  Alcotest.(check int) "opens reconcile across connections"
    (clients * per_client)
    (counter "serve.requests.open");
  Alcotest.(check int) "the trace request is counted" 1
    (counter "serve.requests.trace");
  Alcotest.(check bool) "bytes flowed" true (counter "serve.bytes_in" > 0);
  let health = roundtrip c (P.request ~id:3 P.Health) in
  let requests_total =
    Option.value
      (Option.bind (Json.member "requests_total" health.P.rs_data) Json.to_int)
      ~default:(-1)
  in
  Alcotest.(check bool) "health counts every dispatched request" true
    (requests_total >= (clients * per_client) + 2);
  let shutdown = roundtrip c (P.request ~id:4 P.Shutdown) in
  Alcotest.(check (list string)) "shutdown acknowledged"
    [ "shutting down" ] shutdown.P.rs_lines;
  Client.close c;
  Thread.join daemon;
  Alcotest.(check bool) "socket unlinked after shutdown" false
    (Sys.file_exists socket);
  (* the access log is parseable wet-qlog/1 with the daemon's shapes *)
  match Qlog.load qlog with
  | Error m -> Alcotest.failf "access qlog: %s" m
  | Ok entries ->
    Alcotest.(check int) "one qlog line per request"
      ((clients * per_client) + 4)
      (List.length entries);
    let shapes =
      List.sort_uniq compare (List.map (fun e -> e.Qlog.e_shape) entries)
    in
    List.iter
      (fun s ->
        Alcotest.(check bool) (s ^ " shape logged") true
          (List.mem s shapes))
      [ "serve/open"; "trace/cf"; "serve/metrics"; "serve/health";
        "serve/shutdown" ]

(* The daemon answers unknown verbs and truncated lines with structured
   errors and stays up for the next request on the same connection. *)
let test_daemon_hostile () =
  with_temp_dir @@ fun dir ->
  let socket = Filename.concat dir "serve.sock" in
  let daemon =
    Thread.create Server.run
      { (Server.default_config ~socket) with Server.ring_capacity = 16 }
  in
  let c = connect socket in
  let raw line =
    match Client.raw_request c line with
    | Ok r -> r
    | Error e -> Alcotest.failf "raw request: %s" e
  in
  let bad = raw {|{"id":9,"verb":"frobnicate"}|} in
  Alcotest.(check bool) "unknown verb is an error" false bad.P.rs_ok;
  let trunc = raw {|{"id":10,"verb":"op|} in
  Alcotest.(check bool) "truncated line is an error" false trunc.P.rs_ok;
  (* the connection survived both *)
  let h = roundtrip c (P.request ~id:11 P.Health) in
  Alcotest.(check bool) "daemon still healthy" true h.P.rs_ok;
  ignore (roundtrip c (P.request ~id:12 P.Shutdown));
  Client.close c;
  Thread.join daemon

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest request_roundtrip;
          QCheck_alcotest.to_alcotest response_roundtrip;
          Alcotest.test_case "wire escaping" `Quick test_encode_escapes;
          Alcotest.test_case "hostile lines" `Quick test_hostile_lines;
        ] );
      ( "cache",
        [ Alcotest.test_case "LRU eviction" `Quick test_cache_lru ] );
      ( "top",
        [ Alcotest.test_case "histogram quantiles" `Quick test_quantiles ] );
      ( "daemon",
        [
          Alcotest.test_case "concurrent clients reconcile" `Quick
            test_daemon_concurrent;
          Alcotest.test_case "hostile clients" `Quick test_daemon_hostile;
        ] );
    ]
